package core

import (
	"testing"

	"collabscore/internal/cluster"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// lshParams returns Scaled params with the banding index selected and the
// doubling loop pinned to the planted diameter of byzWorld (paper-regime
// configuration: the sample is dense and the edge threshold is far below
// cross-cluster distances, where the recall argument of DESIGN.md §13
// applies).
func lshParams(n, b int) Params {
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = 4, 4
	pr.NeighborIndex = cluster.IndexSpec{Kind: "lsh"}
	return pr
}

// TestNeighborIndexLSHMatchesExact is the end-to-end equivalence pin: on
// planted worlds at the paper-regime threshold, running the full protocol
// with the LSH index produces the identical outputs, probe counts, and
// per-iteration clustering stats as the exact oracle — with and without
// adaptive adversaries.
func TestNeighborIndexLSHMatchesExact(t *testing.T) {
	for _, n := range []int{256, 512} {
		for _, corrupt := range []bool{false, true} {
			const b = 8
			seed := uint64(3000 + n)

			exact := lshParams(n, b)
			exact.NeighborIndex = cluster.IndexSpec{}
			refW := byzWorld(seed, n, b, corrupt)
			ref := Run(refW, xrand.New(seed).Split(10), exact)

			gotW := byzWorld(seed, n, b, corrupt)
			got := Run(gotW, xrand.New(seed).Split(10), lshParams(n, b))

			if !equalOutputs(ref.Output, got.Output) {
				t.Fatalf("n=%d corrupt=%v: LSH output differs from exact oracle", n, corrupt)
			}
			if len(ref.Iterations) != len(got.Iterations) {
				t.Fatalf("n=%d corrupt=%v: iteration count differs", n, corrupt)
			}
			for gi := range ref.Iterations {
				ri, li := &ref.Iterations[gi], &got.Iterations[gi]
				if ri.NumClusters != li.NumClusters || ri.MinCluster != li.MinCluster ||
					ri.Unassigned != li.Unassigned || ri.SampleSize != li.SampleSize {
					t.Fatalf("n=%d corrupt=%v: iteration %d clustering stats differ (exact %+v, lsh %+v)",
						n, corrupt, gi, ri, li)
				}
			}
			for p := 0; p < n; p++ {
				if refW.Probes(p) != gotW.Probes(p) {
					t.Fatalf("n=%d corrupt=%v: player %d probes %d (exact) vs %d (lsh)",
						n, corrupt, p, refW.Probes(p), gotW.Probes(p))
				}
			}
		}
	}
}

// TestNeighborIndexSparseMatchesDense is the graph-representation pin at
// the protocol layer (DESIGN.md §16): running step 1.d with the neighbor
// graph forced dense and forced sparse — under both exact and LSH
// discovery — produces identical outputs, probe counts, and per-iteration
// clustering stats. The representation is observationally invisible; only
// its memory differs.
func TestNeighborIndexSparseMatchesDense(t *testing.T) {
	const n, b = 256, 8
	for _, kind := range []string{"", "lsh"} {
		for _, corrupt := range []bool{false, true} {
			seed := uint64(4000 + n)

			dense := lshParams(n, b)
			dense.NeighborIndex = cluster.IndexSpec{Kind: kind, Graph: "dense"}
			refW := byzWorld(seed, n, b, corrupt)
			ref := Run(refW, xrand.New(seed).Split(10), dense)

			sparse := lshParams(n, b)
			sparse.NeighborIndex = cluster.IndexSpec{Kind: kind, Graph: "sparse"}
			gotW := byzWorld(seed, n, b, corrupt)
			got := Run(gotW, xrand.New(seed).Split(10), sparse)

			if !equalOutputs(ref.Output, got.Output) {
				t.Fatalf("kind=%q corrupt=%v: sparse output differs from dense", kind, corrupt)
			}
			if len(ref.Iterations) != len(got.Iterations) {
				t.Fatalf("kind=%q corrupt=%v: iteration count differs", kind, corrupt)
			}
			for gi := range ref.Iterations {
				ri, si := &ref.Iterations[gi], &got.Iterations[gi]
				if ri.NumClusters != si.NumClusters || ri.MinCluster != si.MinCluster ||
					ri.Unassigned != si.Unassigned || ri.SampleSize != si.SampleSize {
					t.Fatalf("kind=%q corrupt=%v: iteration %d clustering stats differ (dense %+v, sparse %+v)",
						kind, corrupt, gi, ri, si)
				}
			}
			for p := 0; p < n; p++ {
				if refW.Probes(p) != gotW.Probes(p) {
					t.Fatalf("kind=%q corrupt=%v: player %d probes %d (dense) vs %d (sparse)",
						kind, corrupt, p, refW.Probes(p), gotW.Probes(p))
				}
			}
		}
	}
}

// TestLSHScheduleMatrixMatches gives the LSH path the same schedule-matrix
// treatment as the default path: the full Byzantine wrapper under all four
// repetition × phase schedule combinations must produce byte-identical
// results with the banding index selected.
func TestLSHScheduleMatrixMatches(t *testing.T) {
	const n, b = 128, 8
	const seed = 177
	type schedule struct{ byzSerial, phaseSerial bool }
	var ref *Result
	var refW *world.World
	for _, sc := range []schedule{{true, true}, {true, false}, {false, true}, {false, false}} {
		pr := lshParams(n, b)
		pr.ByzIterations = 6
		pr.ByzSerial = sc.byzSerial
		pr.PhaseSerial = sc.phaseSerial
		w := byzWorld(seed, n, b, true)
		res := RunByzantine(w, xrand.New(seed).Split(11), nil, pr)
		if ref == nil {
			ref, refW = res, w
			continue
		}
		if !equalOutputs(ref.Output, res.Output) {
			t.Fatalf("schedule %+v: LSH output differs from fully-serial reference", sc)
		}
		if ref.HonestLeaders != res.HonestLeaders || ref.BoardWrites != res.BoardWrites ||
			ref.BoardReads != res.BoardReads {
			t.Fatalf("schedule %+v: LSH counters differ from fully-serial reference", sc)
		}
		for p := 0; p < n; p++ {
			if refW.Probes(p) != w.Probes(p) {
				t.Fatalf("schedule %+v: player %d probes differ", sc, p)
			}
		}
	}
}

// TestLSHPhaseWorkersMatch: pinned fixed-width phase pools (the
// single-core-host escape hatch) produce the same LSH-path output as the
// serial and parallel schedules.
func TestLSHPhaseWorkersMatch(t *testing.T) {
	const n, b = 128, 8
	const seed = 91
	serial := lshParams(n, b)
	serial.PhaseSerial = true
	refW := byzWorld(seed, n, b, true)
	ref := Run(refW, xrand.New(seed).Split(10), serial)
	for _, workers := range []int{2, 5} {
		pr := lshParams(n, b)
		pr.PhaseWorkers = workers
		w := byzWorld(seed, n, b, true)
		got := Run(w, xrand.New(seed).Split(10), pr)
		if !equalOutputs(ref.Output, got.Output) {
			t.Fatalf("PhaseWorkers=%d: LSH output differs from serial", workers)
		}
	}
}
