package core

import (
	"testing"
	"testing/quick"

	"collabscore/internal/adversary"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// TestPropertyHonestErrorBounded: across random small planted instances
// (random seed, random budget, random diameter), the single-guess honest
// protocol error never exceeds 2× the planted diameter.
func TestPropertyHonestErrorBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 256
		bChoices := []int{4, 8}
		b := bChoices[rng.Intn(len(bChoices))]
		// Diameters must stay within the separable regime (≈ m/10 at the
		// scaled constants); see Params.SeparableDiameter.
		dChoices := []int{8, 16}
		d := dChoices[rng.Intn(len(dChoices))]
		if d > Scaled(n, b).SeparableDiameter(n)*3/4 {
			return true // outside the guaranteed regime; skip
		}
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		res := Run(w, rng.Split(2), pr)
		return metrics.Error(w, res.Output).Max <= 2*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByzantineNeverWorseThanGarbage: regardless of corruption
// level (even past tolerance) and strategy, honest outputs are produced for
// every player and error never exceeds m (sanity envelope), and below
// tolerance it stays within 2D.
func TestPropertyByzantineEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64, corruptFrac uint8) bool {
		rng := xrand.New(seed)
		const n, b, d = 256, 8, 16
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		tol := pr.MaxDishonest(n)
		f := int(corruptFrac) % (2 * tol)
		adversary.Corrupt(w, f, rng.Split(3).Perm(n), func(p int) world.Behavior {
			return adversary.RandomLiar{Seed: seed}
		})
		res := RunByzantine(w, rng.Split(2), nil, pr)
		es := metrics.Error(w, res.Output)
		if len(res.Output) != n || es.Max > n {
			return false
		}
		if f <= tol && res.HonestLeaders > 0 && es.Max > 2*d {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProbesNeverExceedObjects: probe memoization caps any player's
// probe count at m, whatever the protocol does.
func TestPropertyProbesCapped(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n, b = 128, 4
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, 8)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		Run(w, rng.Split(2), pr)
		for p := 0; p < n; p++ {
			if w.Probes(p) > int64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
