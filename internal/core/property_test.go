package core

import (
	"testing"
	"testing/quick"

	"collabscore/internal/adversary"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// TestPropertyHonestErrorBounded: across random small planted instances
// (random seed, random budget, random diameter), the single-guess honest
// protocol error never exceeds 2× the planted diameter.
func TestPropertyHonestErrorBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 256
		bChoices := []int{4, 8}
		b := bChoices[rng.Intn(len(bChoices))]
		// Diameters must stay within the separable regime (≈ m/10 at the
		// scaled constants); see Params.SeparableDiameter.
		dChoices := []int{8, 16}
		d := dChoices[rng.Intn(len(dChoices))]
		if d > Scaled(n, b).SeparableDiameter(n)*3/4 {
			return true // outside the guaranteed regime; skip
		}
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		res := Run(w, rng.Split(2), pr)
		return metrics.Error(w, res.Output).Max <= 2*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByzantineNeverWorseThanGarbage: regardless of corruption
// level (even past tolerance) and strategy, honest outputs are produced for
// every player and error never exceeds m (sanity envelope), and below
// tolerance it stays within 2D.
func TestPropertyByzantineEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64, corruptFrac uint8) bool {
		rng := xrand.New(seed)
		const n, b, d = 256, 8, 16
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		tol := pr.MaxDishonest(n)
		f := int(corruptFrac) % (2 * tol)
		adversary.Corrupt(w, f, rng.Split(3).Perm(n), func(p int) world.Behavior {
			return adversary.RandomLiar{Seed: seed}
		})
		res := RunByzantine(w, rng.Split(2), nil, pr)
		es := metrics.Error(w, res.Output)
		if len(res.Output) != n || es.Max > n {
			return false
		}
		if f <= tol && res.HonestLeaders > 0 && es.Max > 2*d {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProbeConservation: for random small instances, probe
// accounting is exactly conserved across schedules — the serial reference,
// a fixed-width (forced real goroutines) schedule, and the full parallel
// schedule charge every player identically, and the aggregate views
// (metrics.Probes totals, World.TotalProbes, World.MaxHonestProbes) all
// equal the per-player counters they summarize. This is the property that
// the lock-free CAS memo (world.knownBits) exists to provide: concurrent
// probes of one (player, object) cell must charge exactly once, under any
// interleaving, for both Run and RunByzantine.
func TestPropertyProbeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	type schedule struct {
		byzSerial    bool
		phaseSerial  bool
		phaseWorkers int
	}
	schedules := []schedule{
		{true, true, 0},   // serial reference
		{true, false, 3},  // fixed-width phases
		{false, false, 0}, // fully parallel
	}
	f := func(seed uint64, byzantine bool) bool {
		rng := xrand.New(seed)
		n := 64 + int(seed%3)*32
		const b = 8
		// d alternates between the small-D easy case (full SmallRadius) and
		// the sampling + workshare path, so conservation is checked on both.
		d := 8 << (seed % 2)
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		f := int(seed % uint64(n/(3*b)+1))

		var refProbes []int64
		for _, sc := range schedules {
			w := world.New(in.Truth)
			adversary.Corrupt(w, f, rng.Split(3).Perm(n), func(p int) world.Behavior {
				return adversary.RandomLiar{Seed: seed}
			})
			pr := Scaled(n, b)
			pr.MinD, pr.MaxD = d, d
			pr.ByzSerial = sc.byzSerial
			pr.PhaseSerial = sc.phaseSerial
			pr.PhaseWorkers = sc.phaseWorkers
			if byzantine {
				pr.ByzIterations = 3
				RunByzantine(w, rng.Split(2), nil, pr)
			} else {
				Run(w, rng.Split(2), pr)
			}

			// Aggregates must equal the per-player counters they summarize.
			var total, honestMax int64
			probes := make([]int64, n)
			for p := 0; p < n; p++ {
				probes[p] = w.Probes(p)
				if probes[p] < 0 || probes[p] > int64(n) {
					return false // memo cap: at most m distinct objects
				}
				total += probes[p]
				if w.IsHonest(p) && probes[p] > honestMax {
					honestMax = probes[p]
				}
			}
			if w.TotalProbes() != total || w.MaxHonestProbes() != honestMax {
				return false
			}
			ps := metrics.Probes(w)
			if ps.Total != total || ps.Max != honestMax {
				return false
			}

			// And every schedule must charge identically to the reference.
			if refProbes == nil {
				refProbes = probes
				continue
			}
			for p := 0; p < n; p++ {
				if probes[p] != refProbes[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPooledRunConserves: the pooled allocation path (Params.Mem
// board pool) conserves probe accounting and output exactly — a recycled
// board must be indistinguishable from a fresh one.
func TestPropertyPooledRunConserves(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n, b, d = 96, 8, 16
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d

		wRef := world.New(in.Truth)
		ref := Run(wRef, rng.Split(2), pr)

		mem := NewMem()
		pr.Mem = mem
		for round := 0; round < 2; round++ { // second round reuses pooled boards
			w := world.New(in.Truth)
			res := Run(w, rng.Split(2), pr)
			for p := 0; p < n; p++ {
				if !res.Output[p].Equal(ref.Output[p]) || w.Probes(p) != wRef.Probes(p) {
					return false
				}
			}
			if res.BoardWrites != ref.BoardWrites || res.BoardReads != ref.BoardReads {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProbesNeverExceedObjects: probe memoization caps any player's
// probe count at m, whatever the protocol does.
func TestPropertyProbesCapped(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n, b = 128, 4
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, 8)
		w := world.New(in.Truth)
		pr := Scaled(n, b)
		Run(w, rng.Split(2), pr)
		for p := 0; p < n; p++ {
			if w.Probes(p) > int64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
