package core

import (
	"testing"

	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// TestBoardTrafficRecorded: the work-sharing phase routes reports through
// the bulletin board, so a run with clusters must record writes and reads.
func TestBoardTrafficRecorded(t *testing.T) {
	const n, b, d = 512, 8, 32
	rng := xrand.New(31)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
	w := world.New(in.Truth)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	if res.BoardWrites == 0 {
		t.Fatal("no board writes recorded")
	}
	if res.BoardReads == 0 {
		t.Fatal("no board reads recorded")
	}
	// Writes are bounded by redundancy · m · #clusters (≤ B+2 clusters).
	red := int64(pr.Redundancy(n))
	if res.BoardWrites > red*int64(n)*int64(b+2) {
		t.Fatalf("board writes %d exceed redundancy bound", res.BoardWrites)
	}
	// Per-iteration stats must sum to the totals.
	var sumW, sumR int64
	for _, it := range res.Iterations {
		sumW += it.BoardWrites
		sumR += it.BoardReads
	}
	if sumW != res.BoardWrites || sumR != res.BoardReads {
		t.Fatalf("iteration sums (%d,%d) != totals (%d,%d)", sumW, sumR, res.BoardWrites, res.BoardReads)
	}
}

// TestFullSRIterationHasNoBoardTraffic: the small-D easy case bypasses the
// work-sharing phase entirely.
func TestFullSRIterationHasNoBoardTraffic(t *testing.T) {
	const n, b = 256, 8
	rng := xrand.New(33)
	in := prefgen.IdenticalClusters(rng.Split(1), n, n, n/b)
	w := world.New(in.Truth)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = 1, 1 // forced into the full-SR path
	res := Run(w, rng.Split(2), pr)
	if !res.Iterations[0].UsedFullSR {
		t.Fatal("expected the full-SR path")
	}
	if res.BoardWrites != 0 {
		t.Fatalf("full-SR path recorded %d board writes", res.BoardWrites)
	}
}

// TestDedupInPlace covers the prober-deduplication helper: distinct values
// in first-seen order, compacted into the input's own storage.
func TestDedupInPlace(t *testing.T) {
	in := []int{3, 1, 3, 2, 1, 3}
	got := dedupInPlace(in)
	want := []int{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("dedupInPlace = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupInPlace = %v, want %v", got, want)
		}
	}
	if &got[0] != &in[0] {
		t.Fatal("dedupInPlace did not compact in place")
	}
	if out := dedupInPlace(nil); len(out) != 0 {
		t.Fatal("dedupInPlace(nil) not empty")
	}
	if n := testing.AllocsPerRun(100, func() {
		dedupInPlace(in[:3])
	}); n != 0 {
		t.Fatalf("dedupInPlace allocates %v times per run", n)
	}
}
