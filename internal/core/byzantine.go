package core

import (
	"collabscore/internal/election"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// ByzProtocol describes one protocol family to the generic §7 Byzantine
// wrapper (RunByzantineOver). The wrapper owns everything the paper's §7.1
// construction shares between value domains — per-repetition leader
// elections on pre-split streams, the dishonest-leader worst-case model,
// serial/parallel repetition scheduling with a deterministic merge, and the
// final cross-repetition selection coins — while the protocol family
// supplies the three points where the value domain matters: how to run one
// honest-leader repetition, what the adversary substitutes when its leader
// controls the shared coins, and how a player measures candidate distance
// when selecting among repetitions. The binary protocol (RunByzantine,
// Hamming distance over bitvec.Vector) and the §8 rating protocol
// (multival.RunByzantine, L1 distance over bitvec.Planes) are the two
// instantiations; there is deliberately no third copy of this loop
// anywhere in the repository.
type ByzProtocol[T any] struct {
	// Repetitions is the number of leader-election + full-protocol
	// repetitions k (values < 1 run one repetition).
	Repetitions int
	// Serial forces the repetitions to execute one after another instead of
	// concurrently (reference runs, benchmarks, debugging). Repetitions are
	// independent and merged deterministically either way.
	Serial bool
	// Strategy drives dishonest players' election behavior (nil: greedy
	// lightest-bin rushing).
	Strategy election.BinStrategy
	// Election configures Feige's lightest-bin tournament.
	Election election.Params

	// RunRep executes the full protocol for repetition it under an honest
	// leader's unbiased shared coins, returning one output per player. It
	// may record per-repetition statistics on st (Leader and HonestLeader
	// are already set). RunRep must be safe for concurrent invocations with
	// distinct it unless Serial is set.
	RunRep func(it int, shared *xrand.Stream, st *RepetitionStats) []T
	// Adversarial returns the worst-case outputs of a dishonest-leader
	// repetition: the adversary controls the shared coins, which we model
	// by letting it replace the repetition's candidates outright (strictly
	// worse than anything a biased seed could produce; DESIGN.md §3).
	Adversarial func(it int) []T
	// SelectFinal picks each player's output among the repetition outputs
	// (outputs[it][p]) with the candidate-distance measure of the value
	// domain, consuming the wrapper-provided selection stream.
	SelectFinal func(rng *xrand.Stream, outputs [][]T) []T
}

// RunByzantineOver executes the §7 wrapper skeleton for any value domain:
// k repetitions, each electing a leader with Feige's protocol on its own
// pre-split stream and running either the honest-coin protocol or the
// adversarial worst case, then the final cross-repetition selection.
//
// Streams: repetition it elects on trueRng.Split(0xE1EC, it), runs on
// trueRng.Split(0x5EED, it), and the final selection draws from
// trueRng.Split(0xF17A1) — pure reads of the parent state, so splitting
// order is irrelevant and fixed-seed outputs are byte-identical between the
// serial and concurrent repetition schedules (DESIGN.md §6).
//
// It returns the selected outputs and the per-repetition statistics in
// repetition order (Leader/HonestLeader always set, plus whatever RunRep
// recorded).
func RunByzantineOver[T any](w election.Roster, trueRng *xrand.Stream, pb ByzProtocol[T]) ([]T, []RepetitionStats) {
	k := pb.Repetitions
	if k < 1 {
		k = 1
	}

	// Split every repetition's streams from the parent up front. Splitting
	// is a pure read of the parent's state — concurrent Splits of one
	// parent are safe — but a repetition must never *draw* (Uint64 etc.)
	// from a stream another repetition touches, so each gets its own
	// children before the fan-out.
	elecRng := make([]*xrand.Stream, k)
	sharedRng := make([]*xrand.Stream, k)
	for it := 0; it < k; it++ {
		elecRng[it] = trueRng.Split(0xE1EC, uint64(it))
		sharedRng[it] = trueRng.Split(0x5EED, uint64(it))
	}

	reps := make([]RepetitionStats, k)
	outputs := make([][]T, k)
	runRep := func(it int) {
		st := &reps[it]
		el := election.Run(w, elecRng[it], pb.Strategy, pb.Election)
		st.Leader = el.Leader
		if !w.IsHonest(el.Leader) {
			outputs[it] = pb.Adversarial(it)
			return
		}
		st.HonestLeader = true
		outputs[it] = pb.RunRep(it, sharedRng[it], st)
	}
	if pb.Serial {
		for it := 0; it < k; it++ {
			runRep(it)
		}
	} else {
		par.For(k, runRep)
	}
	return pb.SelectFinal(trueRng.Split(0xF17A1), outputs), reps
}
