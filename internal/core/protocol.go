package core

import (
	"time"

	"collabscore/internal/bitvec"
	"collabscore/internal/board"
	"collabscore/internal/cluster"
	"collabscore/internal/election"
	"collabscore/internal/par"
	"collabscore/internal/selection"
	"collabscore/internal/smallradius"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// IterationStats records what one diameter guess of the protocol did, for
// experiment instrumentation.
type IterationStats struct {
	D           int // diameter guess
	SampleSize  int // |S|
	NumClusters int
	MinCluster  int
	Unassigned  int  // players not placed in any cluster
	UsedFullSR  bool // true when the small-D easy case ran
	// BoardWrites/BoardReads are the bulletin-board traffic of this
	// iteration's work-sharing phase.
	BoardWrites int64
	BoardReads  int64
	// Phase wall-clock durations, for profiling protocol runs.
	SampleTime    time.Duration
	SRTime        time.Duration
	ClusterTime   time.Duration
	WorkshareTime time.Duration
}

// RepetitionStats records what one Byzantine repetition did.
type RepetitionStats struct {
	// Leader is the player elected for this repetition; HonestLeader
	// reports whether it follows the protocol.
	Leader       int
	HonestLeader bool
	// Iterations holds the repetition's per-diameter-guess statistics
	// (empty for dishonest-leader repetitions, which run no protocol —
	// see the worst-case model in DESIGN.md §3).
	Iterations []IterationStats
	// BoardWrites/BoardReads are the repetition's bulletin-board traffic.
	BoardWrites int64
	BoardReads  int64
}

// Result is the output of one protocol run.
type Result struct {
	// Output[p] is the predicted preference vector for player p (length m).
	// Entries for dishonest players are meaningless.
	Output []bitvec.Vector
	// Iterations holds per-diameter-guess statistics. For honest-randomness
	// runs it covers the single doubling loop; for Byzantine runs it holds
	// the statistics of the last repetition that elected an honest leader
	// (empty if every leader was dishonest — Reps has the full picture).
	Iterations []IterationStats
	// Reps holds per-repetition statistics (Byzantine runs only).
	Reps []RepetitionStats
	// HonestLeaders counts Byzantine repetitions that elected an honest
	// leader (Byzantine runs only).
	HonestLeaders int
	// Repetitions is the number of Byzantine repetitions executed.
	Repetitions int
	// BoardWrites and BoardReads account the bulletin-board communication
	// of the work-sharing phases (§8 raises communication cost as an open
	// question; we measure it).
	BoardWrites int64
	BoardReads  int64
}

// phaseExec returns the executor protocol phases run on: the serial
// reference schedule when pr.PhaseSerial is set, the default parallel one
// otherwise (DESIGN.md §9).
func phaseExec(pr Params) *par.Runner {
	return par.Sched(pr.PhaseSerial, pr.PhaseWorkers)
}

// Run executes CalculatePreferences assuming unbiased shared randomness
// (the honest-randomness setting of §6; dishonest players may still lie
// about preferences). Use RunByzantine for the full §7 protocol with
// leader election.
func Run(w *world.World, shared *xrand.Stream, pr Params) *Result {
	res := &Result{}
	rc := world.NewRunOn(w, phaseExec(pr))
	candidates := runDoublingLoop(rc, shared, pr, res)
	res.Output = finalSelect(w, rc.Exec(), shared, candidates, pr)
	return res
}

// runDoublingLoop executes the diameter-doubling loop of Figure 2 and
// returns, for each player, the list of candidate vectors (one per guess).
func runDoublingLoop(rc *world.Run, shared *xrand.Stream, pr Params, res *Result) [][]bitvec.Vector {
	n, m := rc.N(), rc.M()
	guesses := pr.DiameterGuesses(n)
	candidates := make([][]bitvec.Vector, n)
	allObjs := identity(m)

	for gi, d := range guesses {
		iterRng := shared.Split(uint64(gi), uint64(d))
		cand, stats := runIteration(rc, allObjs, d, iterRng, pr)
		res.Iterations = append(res.Iterations, stats)
		res.BoardWrites += stats.BoardWrites
		res.BoardReads += stats.BoardReads
		for p := 0; p < n; p++ {
			candidates[p] = append(candidates[p], cand[p])
		}
	}
	return candidates
}

// runIteration executes one diameter guess: sample, SmallRadius, cluster,
// work-share (Figure 2 steps 1.b–1.e). It returns one candidate vector per
// player over all m objects.
func runIteration(rc *world.Run, allObjs []int, d int, shared *xrand.Stream, pr Params) ([]bitvec.Vector, IterationStats) {
	n, m := rc.N(), rc.M()
	stats := IterationStats{D: d}
	rc.Pub.TargetDiameter = d

	// Easy case (§6.1): small diameter guesses run SmallRadius directly on
	// the full object set.
	if float64(d) < pr.SmallDThreshold*lnN(n) {
		stats.UsedFullSR = true
		rc.Pub.Phase = "smallradius-full"
		z := smallradius.Run(rc, allObjs, d, pr.B, shared.Split(0xF0), pr.SR)
		out := make([]bitvec.Vector, n)
		for p := 0; p < n; p++ {
			out[p] = z[p]
		}
		return out, stats
	}

	// Step 1.b: shared random sample set S.
	rc.Pub.Phase = "sample"
	start := time.Now()
	sample := shared.Split(0x5A).BernoulliSubset(m, pr.SampleProb(n, d))
	if len(sample) == 0 {
		sample = []int{0}
	}
	rc.Pub.SetSample(sample)
	stats.SampleSize = len(sample)
	stats.SampleTime = time.Since(start)

	// Step 1.c: SmallRadius on the sample.
	rc.Pub.Phase = "smallradius"
	start = time.Now()
	zMap := smallradius.Run(rc, sample, pr.SampleDiameter(n), pr.B, shared.Split(0x5B), pr.SR)
	z := make([]bitvec.Vector, n)
	for p := 0; p < n; p++ {
		z[p] = zMap[p]
	}
	stats.SRTime = time.Since(start)

	// Step 1.d: neighbor graph and clusters, through the NeighborIndex seam
	// (exact block sweep by default, LSH banding when the knob is set; the
	// index stream is split from the shared coins — a pure read of their
	// state, so the default path consumes exactly the same coins as before
	// the seam existed). The peel prescans candidate qualification on the
	// run's executor (cluster.BuildOn); PeelSerial selects the verbatim
	// greedy loop it is pinned byte-identical to.
	start = time.Now()
	g := pr.NeighborIndex.BuildGraph(rc.Exec(), z, pr.EdgeThreshold(n), shared.Split(0x5D))
	var cl *cluster.Clustering
	if pr.PeelSerial {
		cl = cluster.Build(g, pr.MinClusterSize(n))
	} else {
		cl = cluster.BuildOn(rc.Exec(), g, pr.MinClusterSize(n))
	}
	rc.Pub.Clusters = cl.Clusters
	stats.NumClusters = len(cl.Clusters)
	stats.MinCluster = cl.MinClusterSize()
	stats.Unassigned = len(cl.Unassigned())
	stats.ClusterTime = time.Since(start)

	// Step 1.e: share the probing work within each cluster. Reports travel
	// through the bulletin board: probers publish to their own lanes and
	// every cluster member tallies the published votes.
	rc.Pub.Phase = "workshare"
	start = time.Now()
	bd := pr.Mem.acquire(n, m)
	out := workShare(rc, bd, cl, shared.Split(0x5C), pr)
	stats.WorkshareTime = time.Since(start)
	stats.BoardWrites = bd.WriteCount()
	stats.BoardReads = bd.ReadCount()
	pr.Mem.release(bd)
	rc.Pub.SetSample(nil)
	rc.Pub.Clusters = nil
	return out, stats
}

// workShare assigns, for every cluster and every object, Redundancy
// randomly chosen cluster members to probe the object; the probers publish
// their reports on the bulletin board, and each member of the cluster
// adopts the majority of the published votes (Figure 2 step 1.e). Players
// in no cluster receive zero vectors, which the final RSelect discards.
//
// It runs as two fan-out phases separated by a board barrier (DESIGN.md
// §7), both over (cluster, word-block) cells — 64 objects per cell — on
// the word-level data path (DESIGN.md §10). The publish phase picks each
// object's probers with shared coins split per (cluster, object) from
// stack-value streams, dedups them with an in-place scan, accumulates each
// prober's 64-object assignment mask in a per-worker scratch arena, and
// flushes one report word (bulk probes for honest probers) and one board
// word write per (prober, block) — a dishonest prober still cannot touch
// other lanes. After Freeze seals the board, the tally phase computes each
// cluster's per-object majorities a word at a time (Frozen.MajorityWord)
// and every member shares the cluster's one immutable majority vector —
// candidates are never mutated downstream, so the per-member clone would
// be pure allocation. Prober choice, published values (first-write-wins)
// and majorities are pure functions of the split streams, so the output is
// identical under any schedule; scratch arenas hold no cross-cell state.
func workShare(rc *world.Run, bd *board.Board, cl *cluster.Clustering, shared *xrand.Stream, pr Params) []bitvec.Vector {
	n, m := rc.N(), rc.M()
	red := pr.Redundancy(n)
	exec := rc.Exec()
	out := make([]bitvec.Vector, n)
	zero := bitvec.New(m)
	for p := range out {
		out[p] = zero // shared default for unassigned players (never mutated)
	}
	numCl := len(cl.Clusters)
	if numCl == 0 || m == 0 {
		return out
	}
	maxMembers := 0
	for _, members := range cl.Clusters {
		if len(members) > maxMembers {
			maxMembers = len(members)
		}
	}
	clusterStreams := make([]xrand.Stream, numCl)
	for j := range clusterStreams {
		clusterStreams[j] = shared.SplitValue(uint64(j))
	}

	// Publish phase, parallel over every (cluster, word-block) cell.
	words := (m + 63) / 64
	cells := numCl * words
	scratches := make([]wsScratch, exec.Workers(cells))
	for i := range scratches {
		scratches[i].init(red, maxMembers)
	}
	exec.ForWorker(cells, func(wk, cell int) {
		sc := &scratches[wk]
		j, wb := cell/words, cell%words
		members := cl.Clusters[j]
		base := wb * 64
		hi := base + 64
		if hi > m {
			hi = m
		}
		for o := base; o < hi; o++ {
			rng := clusterStreams[j].SplitValue(uint64(o))
			chosen := sc.chosen[:red]
			for i := range chosen {
				chosen[i] = rng.Intn(len(members))
			}
			bit := uint64(1) << uint(o-base)
			for _, mi := range dedupInPlace(chosen) {
				if sc.written[mi] == 0 {
					sc.touched = append(sc.touched, mi)
				}
				sc.written[mi] |= bit
			}
		}
		for _, mi := range sc.touched {
			q := members[mi]
			wmask := sc.written[mi]
			bd.WriteWord(q, wb, wmask, rc.ReportWord(q, wb, wmask))
			sc.written[mi] = 0
		}
		sc.touched = sc.touched[:0]
	})

	// Barrier: seal the board. The tally below reads the immutable view
	// without locks, one majority word per (cluster, word-block) cell;
	// distinct cells write distinct words of distinct vectors. Only lanes
	// with a written bit at an object vote there, and within a fresh
	// per-iteration board those are exactly the object's dedup'd probers.
	frozen := bd.Freeze()
	majs := make([]bitvec.Vector, numCl)
	for j := range majs {
		majs[j] = bitvec.New(m)
	}
	exec.For(cells, func(cell int) {
		j, wb := cell/words, cell%words
		majs[j].SetWord(wb, frozen.MajorityWord(wb, cl.Clusters[j]))
	})
	for j, members := range cl.Clusters {
		for _, p := range members {
			out[p] = majs[j]
		}
	}
	return out
}

// wsScratch is one worker's reusable buffers for the workshare publish
// loop: the per-object prober choices, each touched member's accumulated
// 64-object assignment mask, and the list of touched member indices. A
// worker resets its arena at the end of every cell, so no state crosses
// cells and results stay schedule-independent (par.Runner.ForWorker).
type wsScratch struct {
	chosen  []int    // red prober choices (member indices) for one object
	written []uint64 // written[mi] = member mi's assignment mask, this block
	touched []int    // member indices with written != 0, in first-touch order
}

func (sc *wsScratch) init(red, maxMembers int) {
	sc.chosen = make([]int, red)
	sc.written = make([]uint64, maxMembers)
	sc.touched = make([]int, 0, maxMembers)
}

// finalSelect runs RSelect per honest player over its candidate vectors
// (Figure 2 step 2), fanning out over players on the given executor. Each
// player's selection coins are split from the shared stream by player id,
// so the outcome is schedule-independent.
func finalSelect(w *world.World, exec *par.Runner, shared *xrand.Stream, candidates [][]bitvec.Vector, pr Params) []bitvec.Vector {
	n, m := w.N(), w.M()
	allObjs := identity(m)
	out := make([]bitvec.Vector, n)
	exec.For(n, func(p int) {
		if !w.IsHonest(p) {
			out[p] = bitvec.New(m)
			return
		}
		cands := candidates[p]
		if len(cands) == 0 {
			out[p] = bitvec.New(m)
			return
		}
		rng := shared.Split(0xFE11, uint64(p))
		idx := selection.RSelect(w, p, allObjs, cands, rng, pr.Sel)
		out[p] = cands[idx]
	})
	return out
}

// RunTrivial implements the B = Ω(n/log n) easy case: every player probes
// every object (§6.1), a full word at a time.
func RunTrivial(w *world.World) *Result {
	n, m := w.N(), w.M()
	out := make([]bitvec.Vector, n)
	par.For(n, func(p int) {
		v := bitvec.New(m)
		if w.IsHonest(p) {
			for wi := 0; wi < w.ProbeWords(); wi++ {
				v.SetWord(wi, w.ProbeWord(p, wi, ^uint64(0)))
			}
		}
		out[p] = v
	})
	return &Result{Output: out}
}

// RunByzantine executes the full §7 protocol: ByzIterations repetitions,
// each electing a leader with Feige's protocol and running the complete
// doubling loop with the leader's coins, followed by a final RSelect over
// the per-repetition outputs. When a dishonest leader is elected, the
// shared coins of that repetition are adversarial; we model the worst case
// by letting the adversary replace the repetition's candidate vectors with
// the complement of each player's truth — strictly worse than anything a
// biased seed could produce (see DESIGN.md §3).
//
// The election/repetition/selection skeleton is the generic wrapper
// (RunByzantineOver); this function is its binary instantiation — bitvec
// vectors, truth-complement worst case, Hamming-distance RSelect. The
// repetitions are mutually independent — each gets its own split RNG
// streams, its own execution context (world.Run), and its own bulletin
// boards — so they execute concurrently across cores unless pr.ByzSerial
// is set; within each repetition the protocol phases fan out over players
// and objects on the run's executor unless pr.PhaseSerial is set (the two
// layers compose; DESIGN.md §9). Per-repetition statistics are merged in
// repetition order, so the output and every counter are byte-identical to
// the serial schedule for a fixed seed (stateful call-order-dependent
// behaviors like adversary.Flipflopper being the one documented exception;
// see DESIGN.md §6).
//
// binStrategy drives dishonest players' election behavior (nil: greedy
// lightest-bin rushing).
func RunByzantine(w *world.World, trueRng *xrand.Stream, binStrategy election.BinStrategy, pr Params) *Result {
	n := w.N()
	res := &Result{}
	k := pr.ByzIterations
	if k < 1 {
		k = 1
	}
	res.Repetitions = k

	output, reps := RunByzantineOver(w, trueRng, ByzProtocol[bitvec.Vector]{
		Repetitions: k,
		Serial:      pr.ByzSerial,
		Strategy:    binStrategy,
		Election:    pr.Election,
		RunRep: func(it int, shared *xrand.Stream, st *RepetitionStats) []bitvec.Vector {
			// Honest leader: shared coins are unbiased. The repetition runs
			// in its own execution context, leaving w itself read-only.
			rc := world.NewRunOn(w, phaseExec(pr))
			sub := &Result{}
			cands := runDoublingLoop(rc, shared, pr, sub)
			out := finalSelect(w, rc.Exec(), shared, cands, pr)
			st.Iterations = sub.Iterations
			st.BoardWrites = sub.BoardWrites
			st.BoardReads = sub.BoardReads
			return out
		},
		Adversarial: func(int) []bitvec.Vector {
			// Dishonest leader: adversarial coins. Worst-case model — the
			// repetition's output is maximally wrong for every player.
			advOut := make([]bitvec.Vector, n)
			for p := 0; p < n; p++ {
				advOut[p] = w.TruthVector(p).Not()
			}
			return advOut
		},
		SelectFinal: func(rng *xrand.Stream, outputs [][]bitvec.Vector) []bitvec.Vector {
			candidates := make([][]bitvec.Vector, n)
			for p := 0; p < n; p++ {
				cands := make([]bitvec.Vector, k)
				for it := 0; it < k; it++ {
					cands[it] = outputs[it][p]
				}
				candidates[p] = cands
			}
			// If every leader was dishonest (probability vanishing in k at
			// the tolerated corruption level) all candidates are adversarial
			// and the final selection cannot help; res.HonestLeaders exposes
			// this to experiments.
			return finalSelect(w, phaseExec(pr), rng, candidates, pr)
		},
	})
	res.Output = output
	res.Reps = reps

	// Deterministic merge in repetition order, independent of the schedule.
	for it := 0; it < k; it++ {
		st := &res.Reps[it]
		if st.HonestLeader {
			res.HonestLeaders++
			res.Iterations = st.Iterations
		}
		res.BoardWrites += st.BoardWrites
		res.BoardReads += st.BoardReads
	}
	return res
}

// identity returns [0, 1, …, m-1].
func identity(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// dedupInPlace compacts xs to its distinct values, preserving first-seen
// order, and returns the compacted prefix of xs — no allocation. The
// quadratic scan beats any map for the workshare's Redundancy-sized
// slices (≈ 1.5·ln n elements), which is the only place this runs.
func dedupInPlace(xs []int) []int {
	k := 0
	for _, x := range xs {
		dup := false
		for j := 0; j < k; j++ {
			if xs[j] == x {
				dup = true
				break
			}
		}
		if !dup {
			xs[k] = x
			k++
		}
	}
	return xs[:k]
}
