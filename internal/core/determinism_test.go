package core

import (
	"math/bits"
	"runtime"
	"testing"

	"collabscore/internal/adversary"
	"collabscore/internal/bitvec"
	"collabscore/internal/board"
	"collabscore/internal/cluster"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// byzWorld builds a planted instance with tolerance-many dishonest players,
// so the parallel path is exercised with adaptive (Pub-observing)
// adversaries, not just honest reporters.
func byzWorld(seed uint64, n, b int, corrupt bool) *world.World {
	rng := xrand.New(seed)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, 4)
	w := world.New(in.Truth)
	if corrupt {
		pr := Scaled(n, b)
		perm := rng.Split(2).Perm(n)
		adversary.Corrupt(w, pr.MaxDishonest(n), perm, func(p int) world.Behavior {
			return adversary.Combined{Victim: (p + 1) % n, Seed: seed}
		})
	}
	return w
}

func equalOutputs(a, b []bitvec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if a[p].Hamming(b[p]) != 0 {
			return false
		}
	}
	return true
}

// TestByzantineParallelMatchesSerial asserts that the concurrent repetition
// schedule produces byte-identical output, leader tallies, and board
// traffic to the single-threaded reference schedule for fixed seeds — with
// and without Pub-observing adversaries, at small and medium n.
func TestByzantineParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{64, 512} {
		for _, corrupt := range []bool{false, true} {
			const b = 8
			seed := uint64(1000 + n)

			pr := Scaled(n, b)
			pr.ByzIterations = 8

			serial := pr
			serial.ByzSerial = true
			refW := byzWorld(seed, n, b, corrupt)
			ref := RunByzantine(refW, xrand.New(seed).Split(11), nil, serial)

			gotW := byzWorld(seed, n, b, corrupt)
			got := RunByzantine(gotW, xrand.New(seed).Split(11), nil, pr)

			if !equalOutputs(ref.Output, got.Output) {
				t.Fatalf("n=%d corrupt=%v: parallel output differs from serial", n, corrupt)
			}
			if ref.HonestLeaders != got.HonestLeaders || ref.Repetitions != got.Repetitions {
				t.Fatalf("n=%d corrupt=%v: leaders %d/%d vs %d/%d", n, corrupt,
					got.HonestLeaders, got.Repetitions, ref.HonestLeaders, ref.Repetitions)
			}
			if ref.BoardWrites != got.BoardWrites || ref.BoardReads != got.BoardReads {
				t.Fatalf("n=%d corrupt=%v: board traffic %d/%d vs %d/%d", n, corrupt,
					got.BoardWrites, got.BoardReads, ref.BoardWrites, ref.BoardReads)
			}
			if len(ref.Reps) != len(got.Reps) {
				t.Fatalf("n=%d corrupt=%v: Reps length mismatch", n, corrupt)
			}
			for it := range ref.Reps {
				if ref.Reps[it].Leader != got.Reps[it].Leader ||
					ref.Reps[it].HonestLeader != got.Reps[it].HonestLeader {
					t.Fatalf("n=%d corrupt=%v rep %d: leader mismatch", n, corrupt, it)
				}
			}
			// Probe charging is per distinct (player, object) and therefore
			// schedule-independent too.
			for p := 0; p < n; p++ {
				if refW.Probes(p) != gotW.Probes(p) {
					t.Fatalf("n=%d corrupt=%v: player %d probes %d vs %d",
						n, corrupt, p, gotW.Probes(p), refW.Probes(p))
				}
			}
		}
	}
}

// TestPhaseParallelMatchesSerial asserts the phase-level determinism
// contract (DESIGN.md §9): with fixed seeds, running the intra-repetition
// phase loops concurrently produces byte-identical output, probe counts and
// board traffic to the single-threaded reference schedule
// (Params.PhaseSerial), with and without Pub-observing adversaries, at
// small and medium n.
func TestPhaseParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{64, 512} {
		for _, corrupt := range []bool{false, true} {
			const b = 8
			seed := uint64(2000 + n)

			pr := Scaled(n, b)
			serial := pr
			serial.PhaseSerial = true

			refW := byzWorld(seed, n, b, corrupt)
			ref := Run(refW, xrand.New(seed).Split(10), serial)

			gotW := byzWorld(seed, n, b, corrupt)
			got := Run(gotW, xrand.New(seed).Split(10), pr)

			if !equalOutputs(ref.Output, got.Output) {
				t.Fatalf("n=%d corrupt=%v: phase-parallel output differs from serial", n, corrupt)
			}
			if ref.BoardWrites != got.BoardWrites || ref.BoardReads != got.BoardReads {
				t.Fatalf("n=%d corrupt=%v: board traffic %d/%d vs %d/%d", n, corrupt,
					got.BoardWrites, got.BoardReads, ref.BoardWrites, ref.BoardReads)
			}
			if len(ref.Iterations) != len(got.Iterations) {
				t.Fatalf("n=%d corrupt=%v: iteration count differs", n, corrupt)
			}
			for gi := range ref.Iterations {
				ri, go_ := &ref.Iterations[gi], &got.Iterations[gi]
				if ri.SampleSize != go_.SampleSize || ri.NumClusters != go_.NumClusters ||
					ri.MinCluster != go_.MinCluster || ri.Unassigned != go_.Unassigned ||
					ri.BoardWrites != go_.BoardWrites || ri.BoardReads != go_.BoardReads {
					t.Fatalf("n=%d corrupt=%v: iteration %d stats differ", n, corrupt, gi)
				}
			}
			// The probe memo charges per distinct (player, object), so probe
			// complexity is schedule-independent too.
			for p := 0; p < n; p++ {
				if refW.Probes(p) != gotW.Probes(p) {
					t.Fatalf("n=%d corrupt=%v: player %d probes %d vs %d",
						n, corrupt, p, gotW.Probes(p), refW.Probes(p))
				}
			}
		}
	}
}

// TestScheduleMatrixMatches runs the full Byzantine wrapper under all four
// schedule combinations (repetitions × phases, serial × parallel) and
// requires byte-identical results: the two parallelism layers must compose
// without affecting any output.
func TestScheduleMatrixMatches(t *testing.T) {
	const n, b = 64, 8
	const seed = 77
	type schedule struct{ byzSerial, phaseSerial bool }
	var ref *Result
	var refW *world.World
	for _, sc := range []schedule{{true, true}, {true, false}, {false, true}, {false, false}} {
		pr := Scaled(n, b)
		pr.ByzIterations = 6
		pr.ByzSerial = sc.byzSerial
		pr.PhaseSerial = sc.phaseSerial
		w := byzWorld(seed, n, b, true)
		res := RunByzantine(w, xrand.New(seed).Split(11), nil, pr)
		if ref == nil {
			ref, refW = res, w
			continue
		}
		if !equalOutputs(ref.Output, res.Output) {
			t.Fatalf("schedule %+v: output differs from fully-serial reference", sc)
		}
		if ref.HonestLeaders != res.HonestLeaders || ref.BoardWrites != res.BoardWrites ||
			ref.BoardReads != res.BoardReads {
			t.Fatalf("schedule %+v: counters differ from fully-serial reference", sc)
		}
		for p := 0; p < n; p++ {
			if refW.Probes(p) != w.Probes(p) {
				t.Fatalf("schedule %+v: player %d probes differ", sc, p)
			}
		}
	}
}

// TestPhaseConcurrentSmall exercises the phase-parallel path — including
// the lock-free probe memo, the frozen board tally and the block-
// partitioned graph sweep — with real goroutine interleavings even on a
// single-core host, at a size small enough for the race detector to
// explore thoroughly (run under -race).
func TestPhaseConcurrentSmall(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const n, b = 96, 8
	for seed := uint64(0); seed < 3; seed++ {
		w := byzWorld(seed, n, b, true)
		pr := Scaled(n, b)
		res := Run(w, xrand.New(seed).Split(5), pr)
		if len(res.Output) != n {
			t.Fatalf("seed %d: got %d outputs", seed, len(res.Output))
		}
	}
}

// TestByzantineRepStats pins the satellite bugfix: per-repetition stats are
// recorded for every repetition, and Result.Iterations matches the last
// honest-leader repetition (not a stale earlier one when the final leader
// is dishonest).
func TestByzantineRepStats(t *testing.T) {
	const n, b = 128, 8
	w := byzWorld(7, n, b, true)
	pr := Scaled(n, b)
	pr.ByzIterations = 8
	res := RunByzantine(w, xrand.New(7).Split(11), nil, pr)

	if len(res.Reps) != pr.ByzIterations {
		t.Fatalf("Reps records %d repetitions, want %d", len(res.Reps), pr.ByzIterations)
	}
	honest := 0
	var lastHonest *RepetitionStats
	for it := range res.Reps {
		st := &res.Reps[it]
		if st.HonestLeader != w.IsHonest(st.Leader) {
			t.Fatalf("rep %d: HonestLeader flag disagrees with leader %d", it, st.Leader)
		}
		if st.HonestLeader {
			honest++
			lastHonest = st
			if len(st.Iterations) == 0 {
				t.Fatalf("rep %d: honest-leader repetition recorded no iterations", it)
			}
		} else if len(st.Iterations) != 0 || st.BoardWrites != 0 {
			t.Fatalf("rep %d: dishonest-leader repetition recorded protocol stats", it)
		}
	}
	if honest != res.HonestLeaders {
		t.Fatalf("Reps counts %d honest leaders, Result says %d", honest, res.HonestLeaders)
	}
	if lastHonest != nil {
		if len(res.Iterations) != len(lastHonest.Iterations) ||
			(len(res.Iterations) > 0 && res.Iterations[0] != lastHonest.Iterations[0]) {
			t.Fatal("Result.Iterations does not match the last honest repetition")
		}
	}
}

// TestByzantineConcurrentSmall exercises the parallel path at a size small
// enough for the race detector to explore thoroughly (run under -race).
func TestByzantineConcurrentSmall(t *testing.T) {
	const n, b = 96, 8
	for seed := uint64(0); seed < 3; seed++ {
		w := byzWorld(seed, n, b, true)
		pr := Scaled(n, b)
		pr.ByzIterations = 8
		res := RunByzantine(w, xrand.New(seed).Split(3), nil, pr)
		if len(res.Output) != n {
			t.Fatalf("seed %d: got %d outputs", seed, len(res.Output))
		}
	}
}

// TestBulkProbeAccountingMatchesBitwise pins the probe-accounting half of
// the word-level data path (DESIGN.md §10): ProbeWord must charge exactly
// the per-player counts that bit-at-a-time Probe charges for the same
// cells, under concurrent fixed-width schedules with overlapping masks.
// The bitwise reference executes the same (player, word, mask) cells
// serially; distinct-(player, object) charging makes both totals equal to
// the number of distinct cells touched, regardless of schedule or overlap.
func TestBulkProbeAccountingMatchesBitwise(t *testing.T) {
	const n, b = 64, 8
	const seed = 4242
	bulkW := byzWorld(seed, n, b, false)
	bitW := byzWorld(seed, n, b, false)
	words := bulkW.ProbeWords()

	// A deterministic cell list with heavy overlap: every player touches
	// every word twice with different masks, plus a shared stripe.
	type cell struct {
		p, wi int
		mask  uint64
	}
	var cells []cell
	for p := 0; p < n; p++ {
		for wi := 0; wi < words; wi++ {
			h := uint64(p*31+wi)*0x9E3779B97F4A7C15 + 1
			cells = append(cells,
				cell{p, wi, h},
				cell{p, wi, h ^ 0xFFFF0000FFFF0000},
				cell{p % 8, wi, 0xF0F0F0F0F0F0F0F0}, // hot shared cells
			)
		}
	}

	for _, workers := range []int{2, 8} {
		bulkW.ResetProbes()
		bitW.ResetProbes()
		par.Fixed(workers).For(len(cells), func(i int) {
			c := cells[i]
			bulkW.ProbeWord(c.p, c.wi, c.mask)
		})
		for _, c := range cells {
			base := c.wi * 64
			for t := c.mask; t != 0; t &= t - 1 {
				o := base + bits.TrailingZeros64(t)
				if o < bitW.M() {
					bitW.Probe(c.p, o)
				}
			}
		}
		for p := 0; p < n; p++ {
			if bulkW.Probes(p) != bitW.Probes(p) {
				t.Fatalf("workers=%d: player %d charged %d (bulk, concurrent) vs %d (bitwise, serial)",
					workers, p, bulkW.Probes(p), bitW.Probes(p))
			}
		}
	}
}

// TestWorkShareSharesMajorityVector pins the no-clone satellite: every
// member of a cluster receives the *same* immutable majority vector (not a
// per-member copy), unassigned players share one zero vector, and distinct
// clusters do not alias each other.
func TestWorkShareSharesMajorityVector(t *testing.T) {
	const n, b = 96, 8
	const seed = 77
	w := byzWorld(seed, n, b, false)
	pr := Scaled(n, b)
	rc := world.NewRun(w)
	rc.Pub.Phase = "workshare"

	cl := &cluster.Clustering{
		Clusters: [][]int{
			{0, 1, 2, 3, 4, 5, 6, 7},
			{8, 9, 10, 11},
		},
	}
	bd := board.New(n, w.M())
	out := workShare(rc, bd, cl, xrand.New(seed).Split(0x5C), pr)

	for j, members := range cl.Clusters {
		for _, p := range members[1:] {
			if !bitvec.SameStorage(out[members[0]], out[p]) {
				t.Fatalf("cluster %d: members %d and %d do not share the majority vector", j, members[0], p)
			}
		}
	}
	if bitvec.SameStorage(out[0], out[8]) {
		t.Fatal("distinct clusters alias one majority vector")
	}
	if bitvec.SameStorage(out[0], out[12]) {
		t.Fatal("cluster majority aliases the unassigned default")
	}
	for p := 13; p < n; p++ {
		if !bitvec.SameStorage(out[12], out[p]) {
			t.Fatalf("unassigned players %d and %d do not share the zero vector", 12, p)
		}
	}
	if out[12].Count() != 0 {
		t.Fatal("unassigned default vector is not zero")
	}
	// The shared vector is the cluster's actual majority: recompute one
	// object's votes by hand from the members' truth (honest world: the
	// probers report truth, so the majority over any written object matches
	// the written values' majority; just sanity-check lengths and that some
	// cluster published something).
	if out[0].Len() != w.M() || out[8].Len() != w.M() {
		t.Fatal("majority vectors have wrong length")
	}
	if bd.WriteCount() == 0 {
		t.Fatal("workshare published nothing")
	}
}
