// Package core implements CalculatePreferences (Figure 2), the paper's main
// contribution: a B-budget collaborative scoring protocol that is
// asymptotically optimal with respect to budget B and tolerates up to
// n/(3B) dishonest players (Theorem 14).
//
// The protocol guesses the correlation diameter D by doubling, and for each
// guess: draws a shared random sample set S of ~10·ln(n)/D of the objects,
// runs SmallRadius on S to estimate every player's preferences there,
// connects players whose sample estimates are close into a neighbor graph,
// peels clusters of size ≥ n/B, and shares the probing of all n objects
// within each cluster with Θ(log n)-fold redundancy and majority voting.
// A final RSelect picks the best diameter guess per player. The Byzantine
// wrapper (§7.1) repeats everything under Θ(log n) elected leaders and
// RSelects again, so at least one repetition used unbiased shared coins whp.
package core

import (
	"math"

	"collabscore/internal/cluster"
	"collabscore/internal/election"
	"collabscore/internal/selection"
	"collabscore/internal/smallradius"
)

// Params carries every constant of CalculatePreferences. Paper returns the
// literal constants from the paper; Scaled returns simulation-friendly ones
// (the paper's polylog constants exceed n itself at laptop scale — see
// DESIGN.md §4 — so Scaled shrinks the multipliers while preserving every
// structural relationship between the constants).
type Params struct {
	// B is the budget parameter: the protocol targets the error achievable
	// by clusters of size ≥ n/B, using O(B·polylog n) probes per player.
	B int

	// SampleFactor f sets the sample inclusion probability f·ln(n)/D
	// (paper: 10, Lemma 6).
	SampleFactor float64
	// SampleDiamFactor g sets the diameter bound g·ln(n) passed to
	// SmallRadius on the sample set (paper: 20, Lemma 7). Structurally this
	// must be ≥ 2·SampleFactor so that close pairs stay under it whp.
	SampleDiamFactor float64
	// EdgeFactor e sets the neighbor-graph edge threshold e·ln(n)
	// (paper: 220, Lemma 8). Structurally it must exceed the close-pair
	// sample distance plus twice SmallRadius's error on the sample.
	EdgeFactor float64
	// RedundancyFactor r sets the number of probers assigned per object in
	// the work-sharing phase: ⌈r·ln n⌉ (paper: Θ(log n), Lemma 10). It must
	// be large enough for Chernoff majorities and, in the Byzantine case,
	// to out-vote the ≤1/3 dishonest cluster members (Lemma 13).
	RedundancyFactor float64

	// MinD and MaxD restrict the diameter-doubling loop to guesses
	// MinD ≤ D ≤ MaxD. Zero values mean the full paper range 1..n.
	// Experiments that know the planted diameter use this to isolate one
	// iteration.
	MinD, MaxD int

	// SmallDThreshold: guesses D < SmallDThreshold·ln(n) skip the sampling
	// machinery and run SmallRadius on the full object set (§6.1's easy
	// case; paper: 1).
	SmallDThreshold float64

	// ByzIterations is the number of leader-election + full-protocol
	// repetitions in the Byzantine wrapper (paper: Θ(log n)).
	ByzIterations int
	// ByzSerial forces the Byzantine repetitions to execute one after
	// another instead of concurrently. The repetitions are independent and
	// merged deterministically, so this only trades wall-clock time for a
	// single-threaded schedule (reference runs, benchmarks, debugging).
	ByzSerial bool
	// PhaseSerial forces the intra-repetition protocol phases (the
	// per-player, per-pair and per-object loops of SmallRadius, ZeroRadius,
	// graph building and work sharing) onto the single-threaded reference
	// schedule. Phase loops fan out on pre-split RNG streams with
	// index-ordered merges, so fixed-seed output is byte-identical between
	// the serial and parallel phase schedules (DESIGN.md §9;
	// TestPhaseParallelMatchesSerial pins it). Set both ByzSerial and
	// PhaseSerial for a fully single-threaded run.
	PhaseSerial bool
	// PhaseWorkers, when positive and PhaseSerial is unset, pins the phase
	// loops to exactly that many worker goroutines (par.Fixed) instead of
	// the GOMAXPROCS default. Race and property tests use it to force real
	// goroutine interleavings on single-core hosts; output is byte-identical
	// to every other schedule (DESIGN.md §9).
	PhaseWorkers int

	// PeelSerial forces the clustering step's peel onto the verbatim
	// one-at-a-time greedy loop (cluster.Build) instead of the batched
	// peel that prescans candidate qualification on the run's executor
	// (cluster.BuildOn, DESIGN.md §17). The two are pinned byte-identical
	// on every graph, so like PhaseSerial this is a pure execution knob:
	// it exists as the reference oracle for those pins and for
	// benchmarking the batched peel against its predecessor.
	PeelSerial bool

	// NeighborIndex selects the neighbor-discovery implementation of the
	// clustering step (1.d): the zero value is the exact all-pairs sweep —
	// the reference oracle, byte-identical to the pre-seam behavior — and
	// Kind "lsh" switches to the banding index (cluster.LSH), which misses
	// a vanishing fraction of edges but never invents one. Like ByzSerial
	// and PhaseSerial this is a pure execution knob at the parameter layer;
	// unlike them it may change output when non-default, which is why the
	// sweep grid treats it as a paired-comparison axis (same seeds, same
	// worlds, different index). Deterministic for a fixed seed and
	// schedule-independent either way (DESIGN.md §13).
	NeighborIndex cluster.IndexSpec

	// Mem, when non-nil, supplies pooled per-run allocations (the
	// workshare bulletin boards) to the protocol. Pooling changes where
	// storage comes from, never what is computed: fixed-seed output and
	// every counter are byte-identical with and without a Mem. The sweep
	// engine threads one Mem per worker so grid points reuse board storage
	// across simulations.
	Mem *Mem

	SR       smallradius.Params
	Sel      selection.Params
	Election election.Params
}

// Paper returns the constants exactly as stated in the paper.
func Paper(n, b int) Params {
	return Params{
		B:                b,
		SampleFactor:     10,
		SampleDiamFactor: 20,
		EdgeFactor:       220,
		RedundancyFactor: 3,
		SmallDThreshold:  1,
		ByzIterations:    int(math.Ceil(math.Log2(float64(n) + 2))),
		SR:               smallradius.Paper(n),
		Sel:              selection.Defaults(),
		Election:         election.Defaults(),
	}
}

// Scaled returns simulation-scale constants preserving the structural
// relationships: sample diameter = 2·sample factor, edge threshold =
// 2·(sample diameter) (close-pair distance plus SmallRadius slack), and
// modest redundancy.
func Scaled(n, b int) Params {
	p := Paper(n, b)
	p.SampleFactor = 1     // |S| = n·ln n/D; close pairs ≈ ln n apart on S
	p.SampleDiamFactor = 2 // ≈2× the expected close-pair sample distance
	p.EdgeFactor = 4       // ≥ close-pair distance + SmallRadius slack, ≪ cross-cluster distance
	p.RedundancyFactor = 1.5
	p.SmallDThreshold = 3 // below 3·ln n the sample would be most of the objects anyway
	p.ByzIterations = 5
	p.SR = smallradius.Scaled(n)
	p.Sel = selection.Scaled()
	return p
}

// lnN returns ln(n) guarded away from zero for tiny n.
func lnN(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		v = 1
	}
	return v
}

// SampleProb returns the per-object sample inclusion probability for
// diameter guess d.
func (pr Params) SampleProb(n, d int) float64 {
	p := pr.SampleFactor * lnN(n) / float64(d)
	if p > 1 {
		p = 1
	}
	return p
}

// SampleDiameter returns the diameter bound used on the sample set.
func (pr Params) SampleDiameter(n int) int {
	return int(math.Ceil(pr.SampleDiamFactor * lnN(n)))
}

// EdgeThreshold returns the neighbor-graph distance threshold.
func (pr Params) EdgeThreshold(n int) int {
	return int(math.Ceil(pr.EdgeFactor * lnN(n)))
}

// Redundancy returns the number of probers assigned per (cluster, object).
func (pr Params) Redundancy(n int) int {
	r := int(math.Ceil(pr.RedundancyFactor * lnN(n)))
	if r < 3 {
		r = 3
	}
	return r
}

// MinClusterSize returns the cluster size threshold used when peeling the
// neighbor graph. The promised cluster around each player has n/B members,
// but up to n/(3B) of them may be dishonest and refuse to look similar on
// the sample (§7.2), so the visible threshold is n/B − n/(3B) = 2n/(3B).
// Cluster diameter guarantees come from the edge threshold, not the size,
// and the workshare majority stays ≥2/3 honest exactly as Lemma 13 needs.
func (pr Params) MinClusterSize(n int) int {
	s := n/pr.B - n/(3*pr.B)
	if s < 1 {
		s = 1
	}
	return s
}

// DiameterGuesses returns the list of diameter guesses the doubling loop
// will try, honoring MinD/MaxD.
func (pr Params) DiameterGuesses(n int) []int {
	lo, hi := pr.MinD, pr.MaxD
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = n
	}
	var out []int
	for d := 1; d <= n; d *= 2 {
		if d >= lo && d <= hi {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{lo}
	}
	return out
}

// MaxDishonest returns the paper's dishonesty tolerance n/(3B) (§7.2).
func (pr Params) MaxDishonest(n int) int { return n / (3 * pr.B) }

// SeparableDiameter returns the largest planted diameter the sampling
// phase can separate at these constants, for clusters whose centers are
// random (≈ m/2 apart). A far pair at true distance m/2 − D lands at
// ≈ SampleFactor·ln(n)/D · (m/2 − D) on the sample, which must clear the
// EdgeFactor·ln(n) threshold:
//
//	m > 2·D·(EdgeFactor/SampleFactor + 1).
//
// The paper's version of this constraint is Lemma 8's requirement that
// non-neighbors be ≥ 84·D apart; beyond SeparableDiameter the clustering
// merges and the O(D) guarantee does not apply (experiment E8 shows the
// breakdown row). Callers sweeping planted diameters should stay below
// this bound with some margin.
func (pr Params) SeparableDiameter(m int) int {
	ratio := pr.EdgeFactor / pr.SampleFactor
	d := int(float64(m) / (2 * (ratio + 1)))
	if d < 1 {
		d = 1
	}
	return d
}
