package core

import (
	"sync"

	"collabscore/internal/board"
)

// Mem is a reusable-allocation pool for protocol runs: it recycles the
// bulletin boards the workshare phase builds once per diameter guess per
// repetition, which after the word-level data path (DESIGN.md §10) are the
// largest remaining per-run allocation (n lanes × 2 vectors × m bits).
//
// Boards are keyed by shape; Freeze state, lane contents, and traffic
// counters are fully cleared by board.Reset on release, so a pooled run is
// byte-identical to an unpooled one — Mem changes where board storage comes
// from, never what the protocol writes to it. A Mem is safe for concurrent
// use (the Byzantine repetitions of one run borrow boards concurrently),
// but its point is per-worker reuse: the sweep engine gives each worker its
// own Mem so grid points amortize board storage across simulations instead
// of rebuilding it every point.
//
// A nil *Mem disables pooling: acquire falls back to board.New and release
// drops the board, which is the historical allocation behavior.
type Mem struct {
	mu     sync.Mutex
	boards map[[2]int][]*board.Board
}

// NewMem returns an empty pool.
func NewMem() *Mem { return &Mem{} }

// acquire returns a reset board for n players and m objects, reusing a
// pooled one of the same shape when available.
func (mm *Mem) acquire(n, m int) *board.Board {
	if mm == nil {
		return board.New(n, m)
	}
	key := [2]int{n, m}
	mm.mu.Lock()
	free := mm.boards[key]
	if len(free) == 0 {
		mm.mu.Unlock()
		return board.New(n, m)
	}
	bd := free[len(free)-1]
	mm.boards[key] = free[:len(free)-1]
	mm.mu.Unlock()
	return bd
}

// release returns a board to the pool after the phase that used it is done
// with it (including reading its traffic counters). The caller must hold no
// Frozen views of the board past this call.
func (mm *Mem) release(bd *board.Board) {
	if mm == nil || bd == nil {
		return
	}
	bd.Reset()
	key := [2]int{bd.Players(), bd.Objects()}
	mm.mu.Lock()
	if mm.boards == nil {
		mm.boards = make(map[[2]int][]*board.Board)
	}
	mm.boards[key] = append(mm.boards[key], bd)
	mm.mu.Unlock()
}
