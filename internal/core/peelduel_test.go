package core

import (
	"testing"

	"collabscore/internal/xrand"
)

// TestPeelDuelMatrixMatches extends the schedule matrix to the PR 10 tails
// (DESIGN.md §17): the batched peel (PeelSerial off) and the word-block
// streaming duels (Sel.DuelSerial off) must produce byte-identical output,
// iteration stats, and per-player probe charges to the verbatim serial
// loops, under the serial, fixed-width, and parallel phase schedules.
func TestPeelDuelMatrixMatches(t *testing.T) {
	const n, b = 128, 8
	const seed = 4242

	ref := func() (*Result, []int64) {
		pr := Scaled(n, b)
		pr.PhaseSerial = true
		pr.PeelSerial = true
		pr.Sel.DuelSerial = true
		w := byzWorld(seed, n, b, true)
		res := Run(w, xrand.New(seed).Split(10), pr)
		probes := make([]int64, n)
		for p := 0; p < n; p++ {
			probes[p] = w.Probes(p)
		}
		return res, probes
	}
	want, wantProbes := ref()

	type knob struct{ peelSerial, duelSerial bool }
	schedules := map[string]struct {
		serial  bool
		workers int
	}{
		"serial":   {true, 0},
		"fixed3":   {false, 3},
		"parallel": {false, 0},
	}
	for sname, sc := range schedules {
		for _, k := range []knob{{true, true}, {true, false}, {false, true}, {false, false}} {
			pr := Scaled(n, b)
			pr.PhaseSerial = sc.serial
			pr.PhaseWorkers = sc.workers
			pr.PeelSerial = k.peelSerial
			pr.Sel.DuelSerial = k.duelSerial
			w := byzWorld(seed, n, b, true)
			res := Run(w, xrand.New(seed).Split(10), pr)
			if !equalOutputs(want.Output, res.Output) {
				t.Fatalf("%s peelSerial=%v duelSerial=%v: output differs from serial reference",
					sname, k.peelSerial, k.duelSerial)
			}
			if want.BoardWrites != res.BoardWrites || want.BoardReads != res.BoardReads {
				t.Fatalf("%s %+v: board traffic differs", sname, k)
			}
			if len(want.Iterations) != len(res.Iterations) {
				t.Fatalf("%s %+v: iteration count differs", sname, k)
			}
			for gi := range want.Iterations {
				ri, gt := &want.Iterations[gi], &res.Iterations[gi]
				if ri.SampleSize != gt.SampleSize || ri.NumClusters != gt.NumClusters ||
					ri.MinCluster != gt.MinCluster || ri.Unassigned != gt.Unassigned {
					t.Fatalf("%s %+v: iteration %d stats differ", sname, k, gi)
				}
			}
			for p := 0; p < n; p++ {
				if wantProbes[p] != w.Probes(p) {
					t.Fatalf("%s %+v: player %d probes %d vs %d",
						sname, k, p, w.Probes(p), wantProbes[p])
				}
			}
		}
	}
}
