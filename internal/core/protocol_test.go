package core

import (
	"testing"

	"collabscore/internal/adversary"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// honestRun builds a planted instance, runs the honest-randomness protocol,
// and returns world + result.
func honestRun(t *testing.T, seed uint64, n, b, d int, narrow bool) (*world.World, *prefgen.Instance, *Result) {
	t.Helper()
	rng := xrand.New(seed)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
	w := world.New(in.Truth)
	pr := Scaled(n, b)
	if narrow {
		pr.MinD, pr.MaxD = d, d
	}
	return w, in, Run(w, rng.Split(2), pr)
}

// TestHonestAccuracySingleGuess is Lemma 12 at the correct diameter guess:
// max honest error O(D).
func TestHonestAccuracySingleGuess(t *testing.T) {
	for _, cfg := range []struct{ n, b, d int }{
		{512, 8, 32},
		{1024, 8, 32},
		{1024, 16, 64},
	} {
		w, _, res := honestRun(t, uint64(cfg.n+cfg.d), cfg.n, cfg.b, cfg.d, true)
		es := metrics.Error(w, res.Output)
		if es.Max > 2*cfg.d {
			t.Fatalf("n=%d b=%d d=%d: max error %d > %d", cfg.n, cfg.b, cfg.d, es.Max, 2*cfg.d)
		}
	}
}

// TestHonestAccuracyFullLoop: the full doubling loop plus final RSelect
// must match the best single guess (the protocol never knows D).
func TestHonestAccuracyFullLoop(t *testing.T) {
	const n, b, d = 512, 8, 32
	w, _, res := honestRun(t, 77, n, b, d, false)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("full loop max error %d > %d", es.Max, 2*d)
	}
	if len(res.Iterations) < 5 {
		t.Fatalf("doubling loop ran %d iterations", len(res.Iterations))
	}
}

// TestProbeSavingsAtScale: at the correct guess, per-player probes must be
// well below probing everything (the resource-augmentation claim).
func TestProbeSavingsAtScale(t *testing.T) {
	const n, b, d = 2048, 8, 64
	w, _, res := honestRun(t, 99, n, b, d, true)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("max error %d > %d", es.Max, 2*d)
	}
	ps := metrics.Probes(w)
	if ps.Max > int64(n)/4 {
		t.Fatalf("max probes %d ≥ m/4 = %d", ps.Max, n/4)
	}
}

// TestIdenticalClustersNearExact: with zero planted diameter the protocol
// should recover preferences near-exactly.
func TestIdenticalClustersNearExact(t *testing.T) {
	const n, b = 512, 8
	rng := xrand.New(3)
	in := prefgen.IdenticalClusters(rng.Split(1), n, n, n/b)
	w := world.New(in.Truth)
	pr := Scaled(n, b)
	pr.MaxD = 8
	res := Run(w, rng.Split(2), pr)
	es := metrics.Error(w, res.Output)
	if es.Max > 4 {
		t.Fatalf("identical clusters: max error %d", es.Max)
	}
}

// TestRunTrivial: the B = Ω(n/log n) easy case probes everything exactly.
func TestRunTrivial(t *testing.T) {
	rng := xrand.New(4)
	in := prefgen.Uniform(rng.Split(1), 32, 64)
	w := world.New(in.Truth)
	res := RunTrivial(w)
	if es := metrics.Error(w, res.Output); es.Max != 0 {
		t.Fatalf("trivial run error %d", es.Max)
	}
	if metrics.Probes(w).Max != 64 {
		t.Fatal("trivial run should probe all objects")
	}
}

// byzRun corrupts f players with the given factory and runs the full
// Byzantine protocol at the correct diameter guess.
func byzRun(t *testing.T, seed uint64, n, b, d, f int, mk func(p int) world.Behavior) (*world.World, *Result) {
	t.Helper()
	rng := xrand.New(seed)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)
	w := world.New(in.Truth)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	adversary.Corrupt(w, f, rng.Split(7).Perm(n), mk)
	return w, RunByzantine(w, rng.Split(2), nil, pr)
}

// TestByzantineToleranceAllStrategies is the paper's headline claim
// (Theorem 14): with up to n/(3B) dishonest players, the honest error stays
// at the honest-run level for every attack strategy.
func TestByzantineToleranceAllStrategies(t *testing.T) {
	const n, b, d = 1024, 8, 32
	f := Scaled(n, b).MaxDishonest(n)
	strategies := map[string]func(p int) world.Behavior{
		"randomliar": func(p int) world.Behavior { return adversary.RandomLiar{Seed: 7} },
		"flipall":    func(p int) world.Behavior { return adversary.FlipAll{} },
		"colluder": func(p int) world.Behavior {
			return adversary.NewColluder(3, n)
		},
		"hijacker": func(p int) world.Behavior {
			return adversary.ClusterHijacker{Victim: (p + 1) % n}
		},
		"strange":   func(p int) world.Behavior { return adversary.StrangeObjectAttacker{Seed: 9} },
		"mimicflip": func(p int) world.Behavior { return adversary.MimicThenFlip{} },
		"zerospam":  func(p int) world.Behavior { return adversary.ZeroSpam{} },
		"flipflop":  func(p int) world.Behavior { return adversary.NewFlipflopper() },
		"combined": func(p int) world.Behavior {
			return adversary.Combined{Victim: (p + 1) % n, Seed: 0xC0}
		},
	}
	for name, mk := range strategies {
		w, res := byzRun(t, 5, n, b, d, f, mk)
		es := metrics.Error(w, res.Output)
		if es.Max > 2*d {
			t.Fatalf("%s at f=%d: max honest error %d > %d", name, f, es.Max, 2*d)
		}
	}
}

// TestByzantineElectsHonestLeaders: at tolerated corruption, most
// repetitions should elect honest leaders.
func TestByzantineElectsHonestLeaders(t *testing.T) {
	const n, b, d = 1024, 8, 32
	f := Scaled(n, b).MaxDishonest(n)
	w, res := byzRun(t, 11, n, b, d, f, func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 13}
	})
	_ = w
	if res.HonestLeaders == 0 {
		t.Fatal("no honest leader in any repetition")
	}
	if res.Repetitions != Scaled(n, b).ByzIterations {
		t.Fatalf("repetitions = %d", res.Repetitions)
	}
}

// TestByzantineBeyondToleranceDegrades: well past the tolerance the
// guarantees may fail — this documents the boundary rather than asserting
// failure, but the protocol must not panic and must still produce output.
func TestByzantineBeyondTolerance(t *testing.T) {
	const n, b, d = 512, 8, 32
	w, res := byzRun(t, 13, n, b, d, n/3, func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 17}
	})
	if len(res.Output) != n {
		t.Fatal("missing outputs")
	}
	_ = metrics.Error(w, res.Output) // must be computable
}

// TestDishonestOutputsZeroed: the result entries for dishonest players are
// all-zero vectors (their outputs are meaningless by definition).
func TestDishonestOutputsZeroed(t *testing.T) {
	const n, b, d = 512, 8, 32
	w, res := byzRun(t, 15, n, b, d, 10, func(p int) world.Behavior {
		return adversary.FlipAll{}
	})
	for _, p := range w.DishonestPlayers() {
		if res.Output[p].Count() != 0 {
			t.Fatalf("dishonest player %d has non-zero output", p)
		}
	}
}

// TestDeterminism: identical seeds → identical outputs, across the full
// protocol including the Byzantine wrapper.
func TestDeterminism(t *testing.T) {
	sig := func() int {
		rng := xrand.New(21)
		in := prefgen.DiameterClusters(rng.Split(1), 256, 256, 32, 16)
		w := world.New(in.Truth)
		pr := Scaled(256, 8)
		pr.MinD, pr.MaxD = 16, 16
		res := RunByzantine(w, rng.Split(2), nil, pr)
		total := 0
		for _, v := range res.Output {
			total += v.Count()
		}
		return total
	}
	if sig() != sig() {
		t.Fatal("protocol output nondeterministic")
	}
}

// TestDiameterGuesses covers the doubling-loop arithmetic.
func TestDiameterGuesses(t *testing.T) {
	pr := Scaled(64, 4)
	gs := pr.DiameterGuesses(64)
	want := []int{1, 2, 4, 8, 16, 32, 64}
	if len(gs) != len(want) {
		t.Fatalf("guesses = %v", gs)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("guesses = %v, want %v", gs, want)
		}
	}
	pr.MinD, pr.MaxD = 8, 16
	gs = pr.DiameterGuesses(64)
	if len(gs) != 2 || gs[0] != 8 || gs[1] != 16 {
		t.Fatalf("restricted guesses = %v", gs)
	}
	pr.MinD, pr.MaxD = 100, 100 // out of doubling range
	gs = pr.DiameterGuesses(64)
	if len(gs) != 1 || gs[0] != 100 {
		t.Fatalf("fallback guesses = %v", gs)
	}
}

// TestParamHelpers sanity-checks the derived constants.
func TestParamHelpers(t *testing.T) {
	pr := Paper(1024, 8)
	if p := pr.SampleProb(1024, 1024); p <= 0 || p > 1 {
		t.Fatalf("SampleProb = %v", p)
	}
	if pr.SampleProb(1024, 1) != 1 {
		t.Fatal("tiny D should sample everything")
	}
	if pr.SampleDiameter(1024) <= 0 || pr.EdgeThreshold(1024) <= 0 {
		t.Fatal("non-positive derived constants")
	}
	if pr.Redundancy(1024) < 3 {
		t.Fatal("redundancy below minimum")
	}
	if pr.MaxDishonest(1024) != 1024/24 {
		t.Fatalf("MaxDishonest = %d", pr.MaxDishonest(1024))
	}
	if Scaled(1024, 8).MinClusterSize(1024) != 1024/8-1024/24 {
		t.Fatalf("MinClusterSize = %d", Scaled(1024, 8).MinClusterSize(1024))
	}
}

// TestMixtureInstanceRuns: the protocol must handle unstructured inputs
// (no planted clusters) without panicking; accuracy is input-dependent.
func TestMixtureInstanceRuns(t *testing.T) {
	rng := xrand.New(23)
	in := prefgen.Mixture(rng.Split(1), 256, 256)
	w := world.New(in.Truth)
	pr := Scaled(256, 8)
	pr.MinD = 16
	res := Run(w, rng.Split(2), pr)
	if len(res.Output) != 256 {
		t.Fatal("missing outputs")
	}
}
