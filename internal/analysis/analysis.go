// Package analysis provides closed-form calculators for every quantitative
// bound the paper states, so experiments and documentation can print
// "claimed vs measured" side by side and so users can predict resource
// usage before running a simulation.
//
// All formulas are stated for the paper's parameterization (n players,
// n objects unless noted) and return float64 so callers can compare against
// measured means directly. Where the paper hides a constant inside O(·),
// the function documents which constant the implementation uses.
package analysis

import "math"

// Ln returns ln(n) guarded away from zero, the log convention used across
// the protocol constants.
func Ln(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		v = 1
	}
	return v
}

// Tolerance returns the paper's dishonesty tolerance n/(3B) (§3, §7.2).
func Tolerance(n, b int) int { return n / (3 * b) }

// ClusterSize returns the promised cluster size n/B of Definition 1.
func ClusterSize(n, b int) int {
	s := n / b
	if s < 1 {
		s = 1
	}
	return s
}

// VisibleClusterSize returns the peeling threshold n/B − n/(3B): the
// honest members the protocol can rely on seeing (§7.2).
func VisibleClusterSize(n, b int) int {
	s := ClusterSize(n, b) - Tolerance(n, b)
	if s < 1 {
		s = 1
	}
	return s
}

// SampleSize returns the expected |S| for diameter D at sample factor f:
// E|S| = f·ln(n)·n/D, capped at n (Lemma 6 uses f = 10).
func SampleSize(n, d int, f float64) float64 {
	s := f * Ln(n) * float64(n) / float64(d)
	if s > float64(n) {
		return float64(n)
	}
	return s
}

// CloseSampleDistance returns the whp bound on the sampled distance of a
// pair within true distance D: 2·f·ln n (Lemma 6 part 1, where f = 10
// gives the paper's 20·ln n).
func CloseSampleDistance(n int, f float64) float64 { return 2 * f * Ln(n) }

// FarSampleDistance returns the whp lower bound on the sampled distance of
// a pair at true distance ≥ c·D: (c/2)·f·ln n (Lemma 6 part 2's 5c·ln n at
// f = 10).
func FarSampleDistance(n int, f, c float64) float64 { return c / 2 * f * Ln(n) }

// EdgeThreshold returns the neighbor threshold e·ln n (Lemma 7's 220·ln n
// at the paper's e = 220).
func EdgeThreshold(n int, e float64) float64 { return e * Ln(n) }

// ClusterDiameterBound returns the Lemma 9 bound on peeled-cluster true
// diameter: 4 hops × the distance an edge certifies. The paper's constants
// give 4·84·D = 336·D; at implementation constants the certified per-edge
// distance is edgeFactor/sampleFactor·D·2, so the bound is
// 8·(edgeFactor/sampleFactor)·D.
func ClusterDiameterBound(d int, sampleFactor, edgeFactor float64) float64 {
	return 8 * (edgeFactor / sampleFactor) * float64(d)
}

// RSelectProbes returns Theorem 3's probe bound for k candidates:
// k²·s·ln n, where s is the per-pair sample factor.
func RSelectProbes(n, k int, s float64) float64 {
	return float64(k*k) * s * Ln(n)
}

// ZeroRadiusProbes returns Theorem 4's probe bound O(B'·log n) with the
// implementation's base-case constant c: c·B'·ln n for the leaf plus
// 2·B'·log₂ n eliminations.
func ZeroRadiusProbes(n, bPrime int, c float64) float64 {
	return c*float64(bPrime)*Ln(n) + 2*float64(bPrime)*math.Log2(float64(n))
}

// SmallRadiusProbes returns Theorem 5's probe bound
// O(B·log n·D^{3/2}·(D + log n)).
func SmallRadiusProbes(n, b, d int) float64 {
	return float64(b) * Ln(n) * math.Pow(float64(d), 1.5) * (float64(d) + Ln(n))
}

// SmallRadiusErrorBound returns Theorem 5's error bound 5·D.
func SmallRadiusErrorBound(d int) float64 { return 5 * float64(d) }

// WorkShareProbes returns Lemma 10's expected per-player work-share cost:
// each of m objects is probed by r·ln n cluster members chosen among
// ≥ n/B members, so a member expects m·r·ln(n)·B/n probes.
func WorkShareProbes(n, m, b int, r float64) float64 {
	return float64(m) * r * Ln(n) * float64(b) / float64(n)
}

// ProtocolErrorBound returns Lemma 12's guarantee shape: c·D with the
// implementation constant c (the paper proves O(D); the measured constant
// in this implementation is ≤ 1, see EXPERIMENTS.md E8).
func ProtocolErrorBound(d int, c float64) float64 { return c * float64(d) }

// LowerBound returns Claim 2's error floor D/4 for strict B-budget
// algorithms on the adversarial distribution.
func LowerBound(d int) float64 { return float64(d) / 4 }

// FeigeHonestRate returns the Ω(δ^1.65) honest-leader guarantee of the
// leader election for honest fraction (1+δ)/2 (§7.1, Feige [10]). It is a
// lower-bound shape, not an exact rate.
func FeigeHonestRate(honestFraction float64) float64 {
	delta := 2*honestFraction - 1
	if delta <= 0 {
		return 0
	}
	return math.Pow(delta, 1.65)
}

// StrangeObjects returns Lemma 13's bound on the number of objects per
// cluster whose prediction the dishonest players can influence: O(D) —
// the implementation measures against c·D.
func StrangeObjects(d int, c float64) float64 { return c * float64(d) }

// PaperCrossoverN estimates the smallest n at which the paper-constant
// protocol (probe cost ≈ B·ln^3.5 n with the Theorem 5 constants) beats
// probing all n objects — the regime boundary discussed in DESIGN.md §4.
func PaperCrossoverN(b int) int {
	for n := 1 << 10; n < 1<<40; n *= 2 {
		cost := SmallRadiusProbes(n, b, int(20*Ln(n)))
		if cost < float64(n) {
			return n
		}
	}
	return math.MaxInt
}
