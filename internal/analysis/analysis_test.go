package analysis

import (
	"math"
	"testing"
)

func TestLnGuarded(t *testing.T) {
	if Ln(1) != 1 || Ln(2) != 1 {
		t.Fatal("Ln not guarded for tiny n")
	}
	if math.Abs(Ln(1024)-math.Log(1024)) > 1e-12 {
		t.Fatal("Ln wrong for large n")
	}
}

func TestTolerance(t *testing.T) {
	if Tolerance(1024, 8) != 42 {
		t.Fatalf("Tolerance = %d", Tolerance(1024, 8))
	}
	if Tolerance(10, 8) != 0 {
		t.Fatal("tiny tolerance should floor to 0")
	}
}

func TestClusterSizes(t *testing.T) {
	if ClusterSize(1024, 8) != 128 {
		t.Fatal("ClusterSize")
	}
	if ClusterSize(4, 8) != 1 {
		t.Fatal("ClusterSize floor")
	}
	if VisibleClusterSize(1024, 8) != 128-42 {
		t.Fatalf("VisibleClusterSize = %d", VisibleClusterSize(1024, 8))
	}
}

func TestSampleSizeCapped(t *testing.T) {
	if s := SampleSize(1024, 1, 10); s != 1024 {
		t.Fatalf("SampleSize should cap at n, got %v", s)
	}
	s := SampleSize(1024, 64, 1)
	want := math.Log(1024) * 1024 / 64
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("SampleSize = %v, want %v", s, want)
	}
}

func TestLemma6Bounds(t *testing.T) {
	n := 1024
	// Paper constants: close ≤ 20·ln n, far(c=3) ≥ 15·ln n... the paper's
	// 5c·ln n at c=3. Check our formulas match those published numbers at
	// f=10.
	if math.Abs(CloseSampleDistance(n, 10)-20*math.Log(float64(n))) > 1e-9 {
		t.Fatal("close bound mismatch with paper's 20·ln n")
	}
	if math.Abs(FarSampleDistance(n, 10, 3)-15*math.Log(float64(n))) > 1e-9 {
		t.Fatal("far bound mismatch with paper's 15·ln n")
	}
}

func TestMonotonicity(t *testing.T) {
	// Probe bounds must grow in each argument.
	if RSelectProbes(1024, 8, 6) <= RSelectProbes(1024, 4, 6) {
		t.Fatal("RSelectProbes not increasing in k")
	}
	if ZeroRadiusProbes(1024, 8, 2) <= ZeroRadiusProbes(1024, 4, 2) {
		t.Fatal("ZeroRadiusProbes not increasing in B'")
	}
	if SmallRadiusProbes(1024, 8, 16) <= SmallRadiusProbes(1024, 8, 8) {
		t.Fatal("SmallRadiusProbes not increasing in D")
	}
	if WorkShareProbes(1024, 1024, 16, 1.5) <= WorkShareProbes(1024, 1024, 8, 1.5) {
		t.Fatal("WorkShareProbes not increasing in B")
	}
}

func TestFeigeHonestRate(t *testing.T) {
	if FeigeHonestRate(0.5) != 0 {
		t.Fatal("no guarantee at exactly half honest")
	}
	if FeigeHonestRate(1) != 1 {
		t.Fatal("all honest should give 1")
	}
	lo, hi := FeigeHonestRate(0.7), FeigeHonestRate(0.9)
	if !(0 < lo && lo < hi && hi < 1) {
		t.Fatalf("rate ordering wrong: %v %v", lo, hi)
	}
}

func TestLowerBound(t *testing.T) {
	if LowerBound(64) != 16 {
		t.Fatal("Claim 2 bound")
	}
}

func TestPaperCrossoverNIsHuge(t *testing.T) {
	// The headline regime fact from DESIGN.md §4: with the paper's
	// constants the protocol only beats probe-all for astronomically large
	// n; our simulations must therefore use scaled constants.
	n := PaperCrossoverN(8)
	if n < 1<<20 {
		t.Fatalf("paper-constant crossover n = %d — unexpectedly small", n)
	}
}

func TestClusterDiameterBound(t *testing.T) {
	// With paper-equivalent factors the bound is linear in D.
	if ClusterDiameterBound(64, 1, 4) != 2*ClusterDiameterBound(32, 1, 4) {
		t.Fatal("not linear in D")
	}
}
