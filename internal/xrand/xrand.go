// Package xrand provides the deterministic, splittable randomness substrate
// used by every protocol in the repository.
//
// The paper's protocols consume two kinds of randomness:
//
//   - private coins, used by an individual player (e.g. which objects RSelect
//     probes), and
//   - shared coins, agreed upon by all honest players (e.g. the sample set S
//     in CalculatePreferences step 1.b, or the per-object prober assignment
//     in step 1.e). In the Byzantine setting shared coins come from a leader
//     elected with Feige's protocol (§7.1) and are only trustworthy when the
//     leader is honest.
//
// Both are modeled as Streams split deterministically from a root seed, so
// any simulation is exactly reproducible from a single uint64.
package xrand

import (
	"math"
	"sort"
)

// splitmix64 advances the state and returns the next output. It is the
// standard SplitMix64 generator, used both directly and to seed splits.
func splitmix64(state *uint64) uint64 {
	*state += golden
	return finalize(*state)
}

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; split independent streams for concurrent consumers.
type Stream struct {
	state uint64
}

// New returns a Stream seeded from the given seed.
func New(seed uint64) *Stream {
	s := &Stream{state: seed}
	// Warm up so that small, similar seeds diverge immediately.
	splitmix64(&s.state)
	return s
}

// Split derives an independent child stream labeled by the given tags.
// Splitting with the same tags always yields the same child, so subsystems
// can re-derive their streams without coordination.
func (s *Stream) Split(tags ...uint64) *Stream {
	c := s.SplitValue(tags...)
	return &c
}

// SplitValue is Split returning the child by value instead of by pointer.
// Splitting is a pure read of the parent's state, so concurrent SplitValue
// calls on one parent are safe; the returned Stream lives wherever the
// caller puts it, which in the protocol hot loops is the stack — the
// per-(cluster, object) prober-choice streams of the workshare must not
// become per-cell heap objects. The child is identical to Split's for the
// same tags.
func (s *Stream) SplitValue(tags ...uint64) Stream {
	st := s.state
	for _, t := range tags {
		st = mix(st, t)
	}
	c := Stream{state: mix(st, 0x5deece66d)}
	// Warm up exactly as New does, so Split and SplitValue agree.
	splitmix64(&c.state)
	return c
}

func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	return splitmix64(&x)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 { return splitmix64(&s.state) }

// golden is the SplitMix64 state increment (the odd fractional part of the
// golden ratio, 2⁶⁴/φ). Each Uint64 call advances the state by exactly this
// constant before hashing it, which makes the stream counter-based: the
// value of draw i is a pure function of state + (i+1)·golden. At and Skip
// exploit this for O(1) random access into a stream's future draws — the
// substrate the lazy truth sources are built on (DESIGN.md §14).
const golden = 0x9e3779b97f4a7c15

// finalize is the SplitMix64 output hash applied to an already-advanced
// state. splitmix64 = advance by golden, then finalize.
func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// At returns the value the (i+1)-th future Uint64 call would produce —
// At(0) is the next draw, At(1) the one after — without advancing the
// stream. It is O(1) for any i: SplitMix64 is counter-based, so random
// access costs the same as sequential access. Property-pinned against
// sequential Uint64 draws by the package tests.
func (s *Stream) At(i uint64) uint64 {
	return finalize(s.state + (i+1)*golden)
}

// Skip advances the stream past k draws in O(1): after Skip(k) the next
// Uint64 equals what At(k) returned before the call. Skip(a) followed by
// Skip(b) is Skip(a+b); Skip(0) is a no-op.
func (s *Stream) Skip(k uint64) {
	s.state += k * golden
}

// Clone returns an independent copy of the stream at its current position:
// the clone and the original produce the same future draws but advance
// separately.
func (s *Stream) Clone() *Stream {
	c := *s
	return &c
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := s.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	ah, al := a>>32, a&mask
	bh, bl := b>>32, b&mask
	t := ah*bl + (al*bl)>>32
	lo = a * b
	hi = ah*bh + (t >> 32) + ((t&mask + al*bh) >> 32)
	return hi, lo
}

// Float64 returns a uniform float in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *Stream) Bool() bool { return s.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0,n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct uniform elements of [0,n), sorted ascending.
// If k >= n it returns all of [0,n).
func (s *Stream) Sample(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k <= 0 {
		return nil
	}
	// Floyd's algorithm: k iterations, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// SampleFrom returns k distinct uniform elements of the given slice,
// in arbitrary order. If k >= len(set) it returns a copy of set.
func (s *Stream) SampleFrom(set []int, k int) []int {
	if k >= len(set) {
		out := make([]int, len(set))
		copy(out, set)
		return out
	}
	idx := s.Sample(len(set), k)
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = set[j]
	}
	return out
}

// BernoulliSubset returns the sorted subset of [0,n) where each element is
// included independently with probability p. This is how the sample set S
// of CalculatePreferences step 1.b is drawn.
func (s *Stream) BernoulliSubset(n int, p float64) []int {
	if p <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Geometric skipping: expected O(pn) work.
	var out []int
	i := 0
	lq := math.Log1p(-p)
	for {
		u := s.Float64()
		skip := int(math.Floor(math.Log1p(-u) / lq))
		i += skip
		if i >= n {
			return out
		}
		out = append(out, i)
		i++
	}
}

// Zipf returns a value in [0,n) drawn from a (shifted) Zipf distribution
// with exponent alpha > 0: P(i) ∝ 1/(i+1)^alpha. It uses inversion against
// a precomputed CDF for small n; callers needing many draws should use
// NewZipf.
type Zipf struct {
	cdf []float64
	s   *Stream
}

// NewZipf builds a Zipf sampler over [0,n) with exponent alpha.
func NewZipf(s *Stream, n int, alpha float64) *Zipf {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, s: s}
}

// Draw returns the next Zipf-distributed value.
func (z *Zipf) Draw() int {
	u := z.s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Binomial returns a draw from Binomial(n, p) by direct simulation for
// small n and a normal approximation fallback is deliberately avoided to
// keep determinism simple; n in this codebase is at most a few thousand.
func (s *Stream) Binomial(n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			c++
		}
	}
	return c
}

// Shuffle permutes the given slice in place.
func Shuffle[T any](s *Stream, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
