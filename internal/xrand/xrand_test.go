package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	root := New(7)
	a := root.Split(1, 2, 3)
	b := root.Split(1, 2, 3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-tag splits differ")
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different-tag splits", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	a.Split(1)
	a.Split(2, 3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d count %d too far from expected %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(19)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli rate = %v, want ≈%v", rate, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctSorted(t *testing.T) {
	s := New(29)
	for trial := 0; trial < 100; trial++ {
		n := 10 + s.Intn(100)
		k := 1 + s.Intn(n)
		out := s.Sample(n, k)
		if len(out) != k {
			t.Fatalf("Sample(%d,%d) returned %d elements", n, k, len(out))
		}
		for i, v := range out {
			if v < 0 || v >= n {
				t.Fatalf("sample element %d out of range", v)
			}
			if i > 0 && out[i] <= out[i-1] {
				t.Fatal("sample not sorted/distinct")
			}
		}
	}
}

func TestSampleWholeRange(t *testing.T) {
	s := New(31)
	out := s.Sample(5, 10)
	if len(out) != 5 {
		t.Fatalf("Sample(5,10) = %v", out)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("Sample(5,10) = %v, want identity", out)
		}
	}
	if s.Sample(5, 0) != nil {
		t.Fatal("Sample(n,0) should be nil")
	}
}

func TestSampleFrom(t *testing.T) {
	s := New(37)
	set := []int{10, 20, 30, 40, 50}
	out := s.SampleFrom(set, 3)
	if len(out) != 3 {
		t.Fatalf("SampleFrom returned %d elements", len(out))
	}
	valid := map[int]bool{10: true, 20: true, 30: true, 40: true, 50: true}
	seen := map[int]bool{}
	for _, v := range out {
		if !valid[v] || seen[v] {
			t.Fatalf("SampleFrom produced invalid/duplicate %d", v)
		}
		seen[v] = true
	}
	all := s.SampleFrom(set, 99)
	if len(all) != len(set) {
		t.Fatal("SampleFrom with k>len should copy all")
	}
}

func TestBernoulliSubsetRate(t *testing.T) {
	s := New(41)
	const n = 10000
	const p = 0.05
	out := s.BernoulliSubset(n, p)
	want := float64(n) * p
	if math.Abs(float64(len(out))-want) > 5*math.Sqrt(want) {
		t.Fatalf("BernoulliSubset size %d, want ≈%.0f", len(out), want)
	}
	for i, v := range out {
		if v < 0 || v >= n {
			t.Fatalf("element %d out of range", v)
		}
		if i > 0 && out[i] <= out[i-1] {
			t.Fatal("subset not sorted/distinct")
		}
	}
}

func TestBernoulliSubsetEdges(t *testing.T) {
	s := New(43)
	if out := s.BernoulliSubset(100, 0); out != nil {
		t.Fatal("p=0 should give empty subset")
	}
	out := s.BernoulliSubset(100, 1)
	if len(out) != 100 {
		t.Fatalf("p=1 should give everything, got %d", len(out))
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(47)
	z := NewZipf(s, 10, 1.5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
	if counts[0] <= counts[1] {
		t.Fatalf("Zipf rank order violated: counts[0]=%d counts[1]=%d", counts[0], counts[1])
	}
}

func TestBinomialMean(t *testing.T) {
	s := New(53)
	const n, p, trials = 50, 0.4, 2000
	total := 0
	for i := 0; i < trials; i++ {
		v := s.Binomial(n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial out of range: %d", v)
		}
		total += v
	}
	mean := float64(total) / trials
	if math.Abs(mean-n*p) > 1 {
		t.Fatalf("Binomial mean = %v, want ≈%v", mean, n*p)
	}
}

func TestShuffle(t *testing.T) {
	s := New(59)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	Shuffle(s, xs)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	wantSum := 0
	for _, x := range orig {
		wantSum += x
	}
	if sum != wantSum {
		t.Fatal("Shuffle changed elements")
	}
}

// TestSplitValueMatchesSplit: the value-type split must derive exactly the
// stream Split does for the same tags — protocol code mixes the two freely
// (heap streams at phase granularity, stack streams per hot-loop cell).
func TestSplitValueMatchesSplit(t *testing.T) {
	parent := New(1234)
	cases := [][]uint64{{}, {0}, {7}, {1, 2, 3}, {0xC0FFEE, 42}}
	for _, tags := range cases {
		byPtr := parent.Split(tags...)
		byVal := parent.SplitValue(tags...)
		for i := 0; i < 50; i++ {
			if byPtr.Uint64() != byVal.Uint64() {
				t.Fatalf("tags %v: SplitValue diverges from Split at draw %d", tags, i)
			}
		}
	}
}

// TestSplitValueIsPureRead: splitting must not advance the parent.
func TestSplitValueIsPureRead(t *testing.T) {
	a, b := New(9), New(9)
	a.SplitValue(1, 2)
	a.SplitValue(3)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitValue advanced the parent stream")
		}
	}
}

// TestSplitValueAllocFree guards the workshare's per-(cluster, object)
// stream derivation: a stack-local child stream must cost zero heap
// allocations (satellite regression guard).
func TestSplitValueAllocFree(t *testing.T) {
	parent := New(77)
	var sink uint64
	if n := testing.AllocsPerRun(100, func() {
		rng := parent.SplitValue(1, 2)
		sink += rng.Uint64()
		sink += uint64(rng.Intn(17))
	}); n != 0 {
		t.Fatalf("SplitValue path allocates %v times per run", n)
	}
	_ = sink
}

func TestAtMatchesSequentialUint64(t *testing.T) {
	ref := New(2010)
	s := New(2010)
	for i := 0; i < 1000; i++ {
		want := ref.Uint64()
		if got := s.At(uint64(i)); got != want {
			t.Fatalf("At(%d) = %#x, want sequential draw %#x", i, got, want)
		}
	}
	// At never advanced s: its next sequential draw is still draw 0.
	ref0 := New(2010)
	if s.Uint64() != ref0.Uint64() {
		t.Fatal("At advanced the stream")
	}
}

func TestAtIsPureRead(t *testing.T) {
	s := New(7)
	a := s.At(13)
	b := s.At(13)
	if a != b {
		t.Fatalf("repeated At(13) disagreed: %#x vs %#x", a, b)
	}
}

func TestAtRandomAccessProperty(t *testing.T) {
	// Property: for arbitrary (seed, index), At(i) equals the value of the
	// (i+1)-th sequential Uint64 draw — checked by quick-style random trials
	// over seeds and indices (indices bounded so the sequential replay stays
	// cheap).
	meta := New(0xA7)
	for trial := 0; trial < 200; trial++ {
		seed := meta.Uint64()
		i := meta.Intn(4096)
		s := New(seed)
		got := s.At(uint64(i))
		ref := New(seed)
		var want uint64
		for k := 0; k <= i; k++ {
			want = ref.Uint64()
		}
		if got != want {
			t.Fatalf("seed %#x: At(%d) = %#x, want %#x", seed, i, got, want)
		}
	}
}

func TestSkipMatchesSequentialDraws(t *testing.T) {
	for _, k := range []int{0, 1, 2, 63, 64, 1000} {
		a := New(99)
		b := New(99)
		for i := 0; i < k; i++ {
			a.Uint64()
		}
		b.Skip(uint64(k))
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("Skip(%d) diverged from %d sequential draws at draw %d", k, k, i)
			}
		}
	}
}

func TestSkipComposes(t *testing.T) {
	a := New(5)
	b := New(5)
	a.Skip(17)
	a.Skip(25)
	b.Skip(42)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Skip(17)+Skip(25) != Skip(42)")
	}
}

func TestSkipThenAtConsistency(t *testing.T) {
	s := New(123)
	want := s.At(10)
	s.Skip(10)
	if got := s.At(0); got != want {
		t.Fatalf("after Skip(10), At(0) = %#x, want pre-skip At(10) = %#x", got, want)
	}
	if got := s.Uint64(); got != want {
		t.Fatalf("after Skip(10), Uint64() = %#x, want %#x", got, want)
	}
}

func TestCloneDivergesFromOriginalPosition(t *testing.T) {
	s := New(88)
	s.Uint64()
	c := s.Clone()
	if c.Uint64() != s.Uint64() {
		t.Fatal("clone's next draw differs from original's")
	}
	// Advancing the clone does not advance the original.
	c.Skip(100)
	s2 := New(88)
	s2.Skip(2)
	if s.Uint64() != s2.Uint64() {
		t.Fatal("advancing the clone advanced the original")
	}
}
