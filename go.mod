module collabscore

go 1.24
