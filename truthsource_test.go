package collabscore

import (
	"reflect"
	"strings"
	"testing"
)

// TestTruthSourceMatchesDense is the public-API oracle for the truth-source
// seam (DESIGN.md §14): for the same scenario, every representation —
// materialized, lazy, lazy with a tile cache — must produce a byte-identical
// report, across plantings, corruption, and protocol variants. The knob
// changes how truth is stored, never what any probe returns.
func TestTruthSourceMatchesDense(t *testing.T) {
	scenarios := []Scenario{
		{Config: Config{Players: 128, Seed: 31, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
		{Config: Config{Players: 128, Seed: 32, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Dishonest: 5, Strategy: Colluders, Protocol: ProtoByzantine},
		{Config: Config{Players: 96, Seed: 33, FixedDiameter: 4}, ZipfClusters: 4, ZipfAlpha: 1.2, Diameter: 4, Protocol: ProtoRun},
		{Config: Config{Players: 64, Objects: 100, Seed: 34}, Protocol: ProtoRandomGuess},
		{Config: Config{Players: 128, Seed: 35, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoBaseline},
		{Config: Config{Players: 96, Seed: 36, FixedDiameter: 8}, ClusterSize: 12, Diameter: 8, Protocol: ProtoBudgets, CapSmall: 8, CapBig: 48, CapBigFrac: 0.5},
		{Config: Config{Players: 96, Seed: 37, FixedDiameter: 16}, ClusterSize: 12, Diameter: 16, Scale: 5, Dishonest: 4, Strategy: HarshShifters, Protocol: ProtoRatings},
		{Config: Config{Players: 128, Seed: 38, FixedDiameter: 8, NeighborIndex: "lsh"}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
	}
	for i, sc := range scenarios {
		dense := sc
		dense.Config.TruthSource = "dense"
		want := dense.Run()
		for _, src := range []string{"lazy", "lazy:16"} {
			lazy := sc
			lazy.Config.TruthSource = src
			if got := lazy.Run(); !reflect.DeepEqual(got, want) {
				t.Fatalf("scenario %d (%v): TruthSource=%q report differs from dense\n got %+v\nwant %+v",
					i, sc.Protocol, src, got, want)
			}
		}
	}
}

// TestTruthSourceFluentMatchesDense pins the fluent construction path: a
// lazy simulation planted and corrupted by hand must match its dense twin,
// including after re-planting (which rebuilds the world on a new source).
func TestTruthSourceFluentMatchesDense(t *testing.T) {
	build := func(src string) *Report {
		sim := NewSimulation(Config{Players: 128, Seed: 51, FixedDiameter: 8, TruthSource: src})
		sim.PlantClusters(32, 4) // replaced below: re-planting must stay sound
		sim.PlantClusters(16, 8)
		sim.Corrupt(4, FlipAll)
		return sim.RunByzantine()
	}
	want := build("")
	for _, src := range []string{"lazy", "lazy:8"} {
		if got := build(src); !reflect.DeepEqual(got, want) {
			t.Fatalf("fluent TruthSource=%q report differs from dense", src)
		}
	}

	// PlantZipf re-planting on the lazy family.
	zipf := func(src string) *Report {
		sim := NewSimulation(Config{Players: 96, Seed: 52, FixedDiameter: 4, TruthSource: src})
		sim.PlantZipf(4, 1.2, 4)
		return sim.Run()
	}
	if got, want := zipf("lazy"), zipf(""); !reflect.DeepEqual(got, want) {
		t.Fatal("fluent PlantZipf lazy report differs from dense")
	}
}

// TestTruthSourceInvalidPanics: malformed truth-source specs must fail fast
// at construction with an actionable message — on the binary constructor,
// the rating constructor, and the scenario path alike.
func TestTruthSourceInvalidPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func()
	}{
		{"binary", func() { NewSimulation(Config{Players: 16, Seed: 1, TruthSource: "lazy:0"}) }},
		{"rating", func() {
			NewRatingSimulation(RatingConfig{Players: 16, Seed: 1, TruthSource: "sparse"}, 4, 2)
		}},
		{"scenario", func() {
			Scenario{Config: Config{Players: 16, Seed: 1, TruthSource: "lazy:x"}}.Run()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("constructor accepted an invalid TruthSource")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "truth source") {
					t.Fatalf("unhelpful panic: %v", r)
				}
			}()
			tc.run()
		})
	}
}

// TestTruthSourceScheduleMatrix is the full oracle matrix of the seam: for
// every truth representation × phase schedule (serial, fixed-width,
// parallel), the core protocol and the §8 budgets extension must produce
// reports byte-identical to the dense/serial reference — outputs, probe
// counts, and iteration stats. Probing order varies wildly across
// schedules, so this pins that lazy recomputation is genuinely
// order-invariant, not just right for one interleaving.
func TestTruthSourceScheduleMatrix(t *testing.T) {
	type sched struct {
		name  string
		apply func(*Simulation)
	}
	schedules := []sched{
		{"serial", func(s *Simulation) { s.Params().PhaseSerial = true }},
		{"fixed2", func(s *Simulation) { s.Params().PhaseWorkers = 2 }},
		{"parallel", func(s *Simulation) {}},
	}
	build := func(src string) *Simulation {
		sim := NewSimulation(Config{Players: 128, Seed: 61, FixedDiameter: 8, TruthSource: src})
		sim.PlantClusters(16, 8)
		sim.Corrupt(4, RandomLiar)
		return sim
	}
	layers := []struct {
		name string
		run  func(*Simulation) *Report
	}{
		{"core", func(s *Simulation) *Report { return s.Run() }},
		{"budgets", func(s *Simulation) *Report {
			return s.RunWithCapacities(s.TwoTierCapacities(16, 96, 0.5))
		}},
	}
	for _, layer := range layers {
		var ref *Report
		for _, src := range []string{"", "lazy", "lazy:16"} {
			for _, sch := range schedules {
				sim := build(src)
				sch.apply(sim)
				got := layer.run(sim)
				if ref == nil {
					ref = got
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s layer, TruthSource=%q, %s schedule: report diverges from dense/serial reference",
						layer.name, src, sch.name)
				}
			}
		}
	}
}
