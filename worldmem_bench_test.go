package collabscore

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkWorldMemory is the truth-source memory matrix (DESIGN.md §14):
// construction cost and retained heap of a planted simulation, dense vs
// lazy, at two world sizes. B/op and allocs/op show the transient cost of
// construction; the retained_B metric is the live heap a built simulation
// pins — the number that scales O(n·m) dense and O(n) lazy, and the one
// that decides how large a world fits on a machine.
func BenchmarkWorldMemory(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		for _, src := range []string{"dense", "lazy"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, src), func(b *testing.B) {
				cfg := Config{Players: n, Objects: n, Seed: 7, FixedDiameter: 8, TruthSource: src}
				clusterSize := n / 64
				build := func() *Simulation {
					sim := NewSimulation(cfg)
					sim.PlantClusters(clusterSize, 8)
					return sim
				}

				// Retained live heap of one built simulation, measured
				// across full collections.
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				held := build()
				runtime.GC()
				runtime.ReadMemStats(&after)
				retained := float64(0)
				if after.HeapAlloc > before.HeapAlloc {
					retained = float64(after.HeapAlloc - before.HeapAlloc)
				}
				runtime.KeepAlive(held)

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					held = build()
				}
				runtime.KeepAlive(held)
				// ResetTimer clears ReportMetric values, so record the
				// retained-heap number after the timed loop.
				b.ReportMetric(retained, "retained_B")
			})
		}
	}
}
