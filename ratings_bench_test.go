package collabscore_test

// BenchmarkRatings pins the §8 rating-protocol hot path before and after
// the PR 5 vectorization (DESIGN.md §12). The "bitplane" engine is the
// live internal/multival implementation: bit-sliced ratings, word-level L1,
// CAS probe memo with bulk charging, per-worker workshare arenas. The
// "intmatrix" engine re-implements, inside this benchmark, the pre-PR5
// data path — []int published rows, per-element L1 loops, a [][]bool probe
// memo, and a freshly allocated report slice per (cluster, object) in the
// median work-share — so `go test -bench Ratings -benchmem` reports the
// allocs/op and ns/op trajectory of the refactor on every run (CI records
// it into BENCH_PR5.json). Both engines execute the same single-guess
// protocol (publish → neighbor graph → peel → median work-share) over the
// same planted instance.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"collabscore/internal/multival"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

func BenchmarkRatings(b *testing.B) {
	const scale, budget = 5, 8
	for _, n := range []int{256, 1024} {
		d := n / 32
		truth, _ := multival.Generate(xrand.New(2010), n, n, n/budget, d, scale)
		rows := make([][]int, n)
		for p := range rows {
			rows[p] = truth[p].Ints()
		}

		b.Run(fmt.Sprintf("engine=bitplane/n=%d", n), func(b *testing.B) {
			w := multival.NewWorld(truth, scale)
			pr := multival.Scaled(n, budget)
			pr.MinD, pr.MaxD = d, d
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ResetProbes()
				res := multival.Run(w, xrand.New(uint64(i)), pr)
				if len(res.Output) != n {
					b.Fatal("bad output")
				}
			}
		})

		b.Run(fmt.Sprintf("engine=intmatrix/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := legacyRatingsRun(rows, scale, budget, d, xrand.New(uint64(i)))
				if len(out) != n {
					b.Fatal("bad output")
				}
			}
		})
	}
}

// legacyRatingsRun is the pre-PR5 scalar engine, kept verbatim in spirit:
// the allocation pattern (per-player []int rows, per-object report slices,
// per-member output copies) is what the vectorized engine replaced.
func legacyRatingsRun(truth [][]int, scale, budget, d int, shared *xrand.Stream) [][]int {
	n := len(truth)
	m := len(truth[0])
	lnn := math.Log(float64(n))
	if lnn < 1 {
		lnn = 1
	}
	minSize := n/budget - n/(3*budget)
	if minSize < 1 {
		minSize = 1
	}
	probed := make([][]bool, n)
	probes := make([]int, n)
	for p := range probed {
		probed[p] = make([]bool, m)
	}
	probe := func(p, o int) int {
		if !probed[p][o] {
			probed[p][o] = true
			probes[p]++
		}
		return truth[p][o]
	}

	iterRng := shared.Split(0, uint64(d))
	rate := 0.5 * lnn * float64(scale) / float64(d)
	if rate > 1 {
		rate = 1
	}
	sample := iterRng.Split(0x5A).BernoulliSubset(m, rate)
	if len(sample) == 0 {
		sample = []int{0}
	}

	published := par.Map(n, func(p int) []int {
		row := make([]int, len(sample))
		for j, o := range sample {
			row[j] = probe(p, o)
		}
		return row
	})

	threshold := int(4 * rate * float64(d))
	if threshold < 1 {
		threshold = 1
	}
	adj := par.Map(n, func(p int) []int {
		var nb []int
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			dist := 0
			for j := range published[p] {
				if published[p][j] > published[q][j] {
					dist += published[p][j] - published[q][j]
				} else {
					dist += published[q][j] - published[p][j]
				}
			}
			if dist <= threshold {
				nb = append(nb, q)
			}
		}
		return nb
	})
	clusters := legacyPeel(adj, n, minSize)

	red := int(1.5*lnn) + 1
	out := make([][]int, n)
	for p := range out {
		out[p] = make([]int, m)
	}
	for j, members := range clusters {
		clusterRng := iterRng.Split(0x5C, uint64(j))
		ratings := par.Map(m, func(o int) int {
			rng := clusterRng.Split(uint64(o))
			reports := make([]int, 0, red)
			for i := 0; i < red; i++ {
				q := members[rng.Intn(len(members))]
				reports = append(reports, probe(q, o))
			}
			sort.Ints(reports)
			return reports[(len(reports)-1)/2]
		})
		for _, p := range members {
			copy(out[p], ratings)
		}
	}
	return out
}

// legacyPeel is the §6.5 greedy peeling over a plain adjacency list, as the
// scalar engine ran it.
func legacyPeel(adj [][]int, n, minSize int) [][]int {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var clusters [][]int
	for {
		found := -1
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			deg := 0
			for _, q := range adj[p] {
				if alive[q] {
					deg++
				}
			}
			if deg >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		members := []int{found}
		for _, q := range adj[found] {
			if alive[q] {
				members = append(members, q)
			}
		}
		for _, q := range members {
			alive[q] = false
		}
		clusters = append(clusters, members)
	}
	return clusters
}
