package collabscore_test

// Sweep-engine throughput benchmarks: how fast a scenario grid runs, and
// what the pooled point-runner saves over per-point fresh allocation. The
// grid is fixed (32 points at n = 128, mixed honest/corrupt, run +
// byzantine), so ns/op is the wall-clock of the whole grid:
//
//   - fresh-serial     — every point standalone (Scenario.Run), one at a
//     time: the baseline the engine must beat.
//   - pooled-serial    — the engine with one worker: isolates the
//     allocation-reuse win (truth buffers, probe memos, boards).
//   - pooled-parallel  — the engine at GOMAXPROCS workers: adds the
//     scheduling win on multi-core hosts.
//
// All three produce byte-identical record sets (pinned by
// sweep.TestEngineMatchesStandalone and TestPoolMatchesFresh); only the
// time and allocation columns may differ. cmd/bench records the matrix as
// BENCH_PR4.json.

import (
	"testing"

	"collabscore/internal/sweep"
)

// benchGrid is the benchmark's fixed 32-point grid.
func benchGrid(b *testing.B) []sweep.Point {
	b.Helper()
	pts, err := sweep.Expand(sweep.Spec{
		Seed:         2010,
		Trials:       8,
		Players:      []int{128},
		ClusterSizes: []int{16},
		Diameters:    []int{16},
		FixDiameter:  true,
		Dishonest:    []int{0, 5},
		Strategies:   []string{"colluders"},
		Protocols:    []string{"run", "byzantine"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(pts) != 32 {
		b.Fatalf("benchmark grid has %d points, want 32", len(pts))
	}
	return pts
}

func BenchmarkSweep(b *testing.B) {
	pts := benchGrid(b)
	points := float64(len(pts))

	b.Run("fresh-serial", func(b *testing.B) {
		var maxErr int
		for i := 0; i < b.N; i++ {
			for _, pt := range pts {
				sc, err := pt.Scenario()
				if err != nil {
					b.Fatal(err)
				}
				rep := sc.Run()
				if rep.MaxError > maxErr {
					maxErr = rep.MaxError
				}
			}
		}
		b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
		b.ReportMetric(float64(maxErr), "max_err")
	})

	for _, eng := range []struct {
		name    string
		workers int
	}{
		{"pooled-serial", 1},
		{"pooled-parallel", 0},
	} {
		b.Run(eng.name, func(b *testing.B) {
			var maxErr int
			for i := 0; i < b.N; i++ {
				recs, err := sweep.Run(pts, sweep.Options{Workers: eng.workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, rec := range recs {
					if rec.MaxError > maxErr {
						maxErr = rec.MaxError
					}
				}
			}
			b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			b.ReportMetric(float64(maxErr), "max_err")
		})
	}
}
